//! The dependency DAG between transactions of a block.
//!
//! Per the paper (§2.2.2), dependencies are discovered in the consensus
//! stage — the elected node executes the block and serializes the DAG into
//! it, so the executing nodes know all conflicts *before* execution. We
//! reproduce that: the DAG is computed from the read/write sets of the
//! recorded traces (storage slots plus value-transfer balances).

use mtpu_evm::trace::TxTrace;
use mtpu_evm::tx::Transaction;
use mtpu_primitives::{Address, U256};
use std::collections::{HashMap, HashSet};

/// A conflict key: a storage slot or an account balance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Slot {
    Storage(Address, U256),
    Balance(Address),
}

/// Directed acyclic dependency graph over the transactions of one block
/// (edge `i -> j` means `j` must observe `i`'s effects).
#[derive(Debug, Clone, Default)]
pub struct DepGraph {
    parents: Vec<Vec<u32>>,
    children: Vec<Vec<u32>>,
}

impl DepGraph {
    /// An edgeless graph over `n` transactions.
    pub fn new(n: usize) -> Self {
        DepGraph {
            parents: vec![Vec::new(); n],
            children: vec![Vec::new(); n],
        }
    }

    /// Number of transactions.
    pub fn len(&self) -> usize {
        self.parents.len()
    }

    /// `true` for an empty block.
    pub fn is_empty(&self) -> bool {
        self.parents.is_empty()
    }

    /// Adds edge `from -> to`.
    ///
    /// # Panics
    ///
    /// Panics when `from >= to` (edges must follow block order, which
    /// guarantees acyclicity) or when an index is out of range.
    pub fn add_edge(&mut self, from: usize, to: usize) {
        assert!(from < to, "dependency edges follow block order");
        assert!(to < self.parents.len(), "edge target out of range");
        if !self.parents[to].contains(&(from as u32)) {
            self.parents[to].push(from as u32);
            self.children[from].push(to as u32);
        }
    }

    /// Parents of `tx` (must-happen-before set).
    pub fn parents(&self, tx: usize) -> &[u32] {
        &self.parents[tx]
    }

    /// Children of `tx`.
    pub fn children(&self, tx: usize) -> &[u32] {
        &self.children[tx]
    }

    /// Fraction of transactions with at least one parent — the paper's
    /// "proportion of dependent transactions" x-axis.
    pub fn dependent_ratio(&self) -> f64 {
        if self.parents.is_empty() {
            return 0.0;
        }
        let dependent = self.parents.iter().filter(|p| !p.is_empty()).count();
        dependent as f64 / self.parents.len() as f64
    }

    /// Length of the longest dependency chain (critical path in
    /// transaction counts).
    pub fn critical_path_len(&self) -> usize {
        let n = self.len();
        let mut depth = vec![1usize; n];
        for i in 0..n {
            for &p in &self.parents[i] {
                depth[i] = depth[i].max(depth[p as usize] + 1);
            }
        }
        depth.into_iter().max().unwrap_or(0)
    }

    /// Builds the DAG from the conflicts between recorded executions:
    /// write→read, write→write and read→write orderings over storage
    /// slots and transferred balances.
    ///
    /// Gas-fee bookkeeping (sender gas debit, coinbase credit) is
    /// excluded: fee accrual commutes and would otherwise serialize every
    /// block, which neither the paper nor production parallel executors
    /// (e.g. Block-STM) order on.
    pub fn from_conflicts(txs: &[Transaction], traces: &[TxTrace]) -> DepGraph {
        assert_eq!(txs.len(), traces.len());
        let n = txs.len();
        let mut g = DepGraph::new(n);
        let mut last_writer: HashMap<Slot, usize> = HashMap::new();
        let mut readers_since: HashMap<Slot, Vec<usize>> = HashMap::new();
        let mut last_of_sender: HashMap<Address, usize> = HashMap::new();

        for i in 0..n {
            // Nonce ordering: transactions of one sender execute in order.
            if let Some(&prev) = last_of_sender.get(&txs[i].from) {
                g.add_edge(prev, i);
            }
            last_of_sender.insert(txs[i].from, i);
            let (reads, writes) = rw_sets(&txs[i], &traces[i]);
            for r in &reads {
                if let Some(&w) = last_writer.get(r) {
                    if w != i {
                        g.add_edge(w, i);
                    }
                }
                readers_since.entry(*r).or_default().push(i);
            }
            for w in &writes {
                if let Some(&pw) = last_writer.get(w) {
                    if pw != i {
                        g.add_edge(pw, i);
                    }
                }
                if let Some(rs) = readers_since.get(w) {
                    for &r in rs {
                        if r != i {
                            g.add_edge(r, i);
                        }
                    }
                }
                last_writer.insert(*w, i);
                readers_since.insert(*w, Vec::new());
            }
        }
        g
    }

    /// Checks that `start[j] >= end[i]` for every edge `i -> j` — the
    /// serializability oracle used by the scheduler tests.
    #[allow(clippy::needless_range_loop)] // j indexes parents and start
    pub fn schedule_respects_dag(&self, start: &[u64], end: &[u64]) -> bool {
        for j in 0..self.len() {
            for &p in &self.parents[j] {
                if start[j] < end[p as usize] {
                    return false;
                }
            }
        }
        true
    }
}

fn rw_sets(tx: &Transaction, trace: &TxTrace) -> (HashSet<Slot>, HashSet<Slot>) {
    let mut reads = HashSet::new();
    let mut writes = HashSet::new();
    for acc in &trace.storage {
        let slot = Slot::Storage(acc.address, acc.key);
        if acc.write {
            writes.insert(slot);
        } else {
            reads.insert(slot);
        }
    }
    // Value movement touches balances.
    if !tx.value.is_zero() {
        writes.insert(Slot::Balance(tx.from));
        if let Some(to) = tx.to {
            writes.insert(Slot::Balance(to));
        }
    }
    (reads, writes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtpu_evm::trace::StorageAccess;

    fn tx(from: u64, to: u64, value: u64) -> Transaction {
        Transaction::transfer(
            Address::from_low_u64(from),
            Address::from_low_u64(to),
            U256::from(value),
            0,
        )
    }

    fn trace_with(accs: &[(u64, u64, bool)]) -> TxTrace {
        TxTrace {
            storage: accs
                .iter()
                .map(|&(a, k, w)| StorageAccess {
                    step: 0,
                    address: Address::from_low_u64(a),
                    key: U256::from(k),
                    write: w,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn write_write_conflict() {
        let txs = vec![tx(1, 2, 0), tx(3, 4, 0)];
        let traces = vec![trace_with(&[(9, 1, true)]), trace_with(&[(9, 1, true)])];
        let g = DepGraph::from_conflicts(&txs, &traces);
        assert_eq!(g.parents(1), &[0]);
        assert_eq!(g.dependent_ratio(), 0.5);
    }

    #[test]
    fn read_write_and_write_read() {
        // T0 writes k, T1 reads k (WAR->RAW edge 0->1), T2 writes k
        // (edges from writer 0 and reader 1).
        let txs = vec![tx(1, 2, 0), tx(3, 4, 0), tx(5, 6, 0)];
        let traces = vec![
            trace_with(&[(9, 1, true)]),
            trace_with(&[(9, 1, false)]),
            trace_with(&[(9, 1, true)]),
        ];
        let g = DepGraph::from_conflicts(&txs, &traces);
        assert_eq!(g.parents(1), &[0]);
        let mut p2 = g.parents(2).to_vec();
        p2.sort();
        assert_eq!(p2, vec![0, 1]);
        assert_eq!(g.critical_path_len(), 3);
    }

    #[test]
    fn balance_conflicts_from_value_transfers() {
        // Two transfers from the same sender conflict.
        let txs = vec![tx(1, 2, 5), tx(1, 3, 5)];
        let traces = vec![TxTrace::default(), TxTrace::default()];
        let g = DepGraph::from_conflicts(&txs, &traces);
        assert_eq!(g.parents(1), &[0]);
    }

    #[test]
    fn independent_txs_have_no_edges() {
        let txs = vec![tx(1, 2, 1), tx(3, 4, 1)];
        let traces = vec![TxTrace::default(), TxTrace::default()];
        let g = DepGraph::from_conflicts(&txs, &traces);
        assert_eq!(g.dependent_ratio(), 0.0);
        assert_eq!(g.critical_path_len(), 1);
    }

    #[test]
    fn reads_do_not_conflict_with_reads() {
        let txs = vec![tx(1, 2, 0), tx(3, 4, 0)];
        let traces = vec![trace_with(&[(9, 1, false)]), trace_with(&[(9, 1, false)])];
        let g = DepGraph::from_conflicts(&txs, &traces);
        assert_eq!(g.dependent_ratio(), 0.0);
    }

    #[test]
    fn schedule_oracle() {
        let mut g = DepGraph::new(2);
        g.add_edge(0, 1);
        assert!(g.schedule_respects_dag(&[0, 10], &[10, 20]));
        assert!(!g.schedule_respects_dag(&[0, 5], &[10, 20]));
    }

    #[test]
    #[should_panic(expected = "block order")]
    fn backward_edge_rejected() {
        let mut g = DepGraph::new(2);
        g.add_edge(1, 0);
    }
}
