//! The spatial-temporal scheduling algorithm (paper §3.2) and its
//! comparison baselines.

mod depgraph;
mod rwset;
mod sim;
mod tables;

pub use depgraph::DepGraph;
pub use rwset::{static_rw_set, tx_rw_set, Footprint, RwSet, SlotKey};
pub use sim::{simulate_sequential, simulate_st, simulate_sync, ScheduleResult};
pub use tables::{PuRow, SchedulingTable, TransactionTable, MAX_CANDIDATES};
