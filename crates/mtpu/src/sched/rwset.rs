//! Read/write-set extraction from recorded transaction traces.
//!
//! Shared between the consensus-stage DAG construction
//! ([`super::DepGraph::from_conflicts`]) and the wall-clock parallel
//! execution engine (`mtpu-parexec`), which drives its worker pool off the
//! same conflict keys.

use mtpu_evm::trace::TxTrace;
use mtpu_evm::tx::Transaction;
use mtpu_primitives::{Address, U256};
use std::collections::HashSet;

/// A conflict key: a storage slot or an account balance.
///
/// Gas-fee bookkeeping (sender gas debit, coinbase credit) is deliberately
/// *not* a key: fee accrual commutes and would otherwise serialize every
/// block, which neither the paper nor production parallel executors (e.g.
/// Block-STM) order on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SlotKey {
    /// A contract storage slot.
    Storage(Address, U256),
    /// An account balance touched by value transfer.
    Balance(Address),
}

/// The conflict footprint of one transaction.
#[derive(Debug, Clone, Default)]
pub struct RwSet {
    /// Keys the transaction observes.
    pub reads: HashSet<SlotKey>,
    /// Keys the transaction mutates.
    pub writes: HashSet<SlotKey>,
}

impl RwSet {
    /// `true` when `self` writes something `other` reads or writes, or
    /// vice versa — i.e. the two transactions cannot run concurrently.
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        self.writes
            .iter()
            .any(|k| other.reads.contains(k) || other.writes.contains(k))
            || other.writes.iter().any(|k| self.reads.contains(k))
    }
}

/// Extracts the read/write sets of a recorded execution: storage accesses
/// from the trace plus the balances moved by the value transfer.
pub fn tx_rw_set(tx: &Transaction, trace: &TxTrace) -> RwSet {
    let mut set = RwSet::default();
    for acc in &trace.storage {
        let slot = SlotKey::Storage(acc.address, acc.key);
        if acc.write {
            set.writes.insert(slot);
        } else {
            set.reads.insert(slot);
        }
    }
    // Value movement touches balances.
    if !tx.value.is_zero() {
        set.writes.insert(SlotKey::Balance(tx.from));
        if let Some(to) = tx.to {
            set.writes.insert(SlotKey::Balance(to));
        }
    }
    set
}
