//! Read/write-set extraction from recorded transaction traces.
//!
//! Shared between the consensus-stage DAG construction
//! ([`super::DepGraph::from_conflicts`]), the wall-clock parallel
//! execution engine (`mtpu-parexec`), and the mempool's conflict-aware
//! block packer (`mtpu-mempool`), which all drive off the same conflict
//! keys.

use mtpu_evm::trace::TxTrace;
use mtpu_evm::tx::Transaction;
use mtpu_primitives::{Address, U256};
use std::collections::HashSet;

/// A conflict key: a storage slot or an account balance.
///
/// Gas-fee bookkeeping (sender gas debit, coinbase credit) is deliberately
/// *not* a key: fee accrual commutes and would otherwise serialize every
/// block, which neither the paper nor production parallel executors (e.g.
/// Block-STM) order on.
///
/// The `Ord` impl gives [`Footprint`] its canonical sorted form; the
/// ordering itself carries no semantic meaning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum SlotKey {
    /// A contract storage slot.
    Storage(Address, U256),
    /// An account balance touched by value transfer.
    Balance(Address),
}

/// The conflict footprint of one transaction.
#[derive(Debug, Clone, Default)]
pub struct RwSet {
    /// Keys the transaction observes.
    pub reads: HashSet<SlotKey>,
    /// Keys the transaction mutates.
    pub writes: HashSet<SlotKey>,
}

impl RwSet {
    /// `true` when `self` writes something `other` reads or writes, or
    /// vice versa — i.e. the two transactions cannot run concurrently.
    ///
    /// Always probes the hash sets of the *larger* side while iterating
    /// the smaller, so cost is `O(min(|self|, |other|))` probes; the
    /// [`RwSet::conflicts_with_naive`] reference scan is kept for the
    /// parity property test.
    pub fn conflicts_with(&self, other: &RwSet) -> bool {
        // self.writes ∩ (other.reads ∪ other.writes)
        let w_vs_rw = if self.writes.len() <= other.reads.len() + other.writes.len() {
            self.writes
                .iter()
                .any(|k| other.reads.contains(k) || other.writes.contains(k))
        } else {
            other.reads.iter().any(|k| self.writes.contains(k))
                || other.writes.iter().any(|k| self.writes.contains(k))
        };
        if w_vs_rw {
            return true;
        }
        // other.writes ∩ self.reads
        if other.writes.len() <= self.reads.len() {
            other.writes.iter().any(|k| self.reads.contains(k))
        } else {
            self.reads.iter().any(|k| other.writes.contains(k))
        }
    }

    /// The textbook nested-scan conflict check — the reference
    /// implementation the optimized paths are property-tested against.
    pub fn conflicts_with_naive(&self, other: &RwSet) -> bool {
        self.writes
            .iter()
            .any(|k| other.reads.contains(k) || other.writes.contains(k))
            || other.writes.iter().any(|k| self.reads.contains(k))
    }

    /// Compiles the set into its sorted-slice [`Footprint`] form for the
    /// block packer's inner loop.
    pub fn footprint(&self) -> Footprint {
        Footprint::from_rw_set(self)
    }
}

/// A compiled, immutable form of an [`RwSet`]: sorted deduplicated key
/// slices, so a conflict check is a linear two-pointer merge instead of
/// per-key hashing — the representation the block packer keeps per pooled
/// transaction and for its growing packed-set aggregate.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    reads: Vec<SlotKey>,
    writes: Vec<SlotKey>,
}

impl Footprint {
    /// Compiles `set` (sort + dedup both key lists).
    pub fn from_rw_set(set: &RwSet) -> Footprint {
        let mut reads: Vec<SlotKey> = set.reads.iter().copied().collect();
        let mut writes: Vec<SlotKey> = set.writes.iter().copied().collect();
        reads.sort_unstable();
        writes.sort_unstable();
        Footprint { reads, writes }
    }

    /// Keys read, sorted ascending.
    pub fn reads(&self) -> &[SlotKey] {
        &self.reads
    }

    /// Keys written, sorted ascending.
    pub fn writes(&self) -> &[SlotKey] {
        &self.writes
    }

    /// Total number of keys.
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// `true` when the footprint touches nothing.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }

    /// `true` when the two footprints cannot run concurrently — same
    /// predicate as [`RwSet::conflicts_with`], in `O(n + m)` comparisons
    /// over the sorted slices.
    pub fn conflicts_with(&self, other: &Footprint) -> bool {
        sorted_intersects(&self.writes, &other.writes)
            || sorted_intersects(&self.writes, &other.reads)
            || sorted_intersects(&self.reads, &other.writes)
    }

    /// Merges `other` into `self` (the packer's aggregate of everything
    /// already packed). Keeps both lists sorted and deduplicated.
    pub fn absorb(&mut self, other: &Footprint) {
        self.reads = sorted_union(&self.reads, &other.reads);
        self.writes = sorted_union(&self.writes, &other.writes);
    }
}

/// `true` when two ascending sorted slices share an element.
fn sorted_intersects(a: &[SlotKey], b: &[SlotKey]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Less => i += 1,
            core::cmp::Ordering::Greater => j += 1,
            core::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Sorted deduplicating merge of two ascending sorted slices.
fn sorted_union(a: &[SlotKey], b: &[SlotKey]) -> Vec<SlotKey> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            core::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            core::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            core::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Extracts the read/write sets of a recorded execution: storage accesses
/// from the trace plus the balances moved by the value transfer.
pub fn tx_rw_set(tx: &Transaction, trace: &TxTrace) -> RwSet {
    let mut set = RwSet::default();
    for acc in &trace.storage {
        let slot = SlotKey::Storage(acc.address, acc.key);
        if acc.write {
            set.writes.insert(slot);
        } else {
            set.reads.insert(slot);
        }
    }
    // Value movement touches balances.
    if !tx.value.is_zero() {
        set.writes.insert(SlotKey::Balance(tx.from));
        if let Some(to) = tx.to {
            set.writes.insert(SlotKey::Balance(to));
        }
    }
    set
}

/// The minimal conflict footprint derivable from a transaction alone,
/// without executing it: the balances its value transfer moves. Used as
/// the mempool's fallback when admission-time speculative execution fails
/// (e.g. a mid-chain transaction that only becomes executable after its
/// predecessors commit). An under-approximation only costs parallelism —
/// the parallel engine's read-set validation still catches every real
/// conflict.
pub fn static_rw_set(tx: &Transaction) -> RwSet {
    let mut set = RwSet::default();
    if !tx.value.is_zero() {
        set.writes.insert(SlotKey::Balance(tx.from));
        if let Some(to) = tx.to {
            set.writes.insert(SlotKey::Balance(to));
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtpu_primitives::SplitMix64;

    fn key(rng: &mut SplitMix64, space: u64) -> SlotKey {
        if rng.random_bool(0.3) {
            SlotKey::Balance(Address::from_low_u64(rng.random_range(0..space)))
        } else {
            SlotKey::Storage(
                Address::from_low_u64(rng.random_range(0..space)),
                U256::from(rng.random_range(0..space)),
            )
        }
    }

    fn random_set(rng: &mut SplitMix64, keys: u64, space: u64) -> RwSet {
        let mut set = RwSet::default();
        for _ in 0..rng.random_range(0..keys) {
            set.reads.insert(key(rng, space));
        }
        for _ in 0..rng.random_range(0..keys) {
            set.writes.insert(key(rng, space));
        }
        set
    }

    /// The optimized hash-probe path and the sorted-slice footprint path
    /// must agree with the naive nested scan on random sets — including
    /// tight key spaces where collisions are common and wide ones where
    /// they are rare.
    #[test]
    fn fast_paths_match_naive_conflicts() {
        let mut rng = SplitMix64::seed_from_u64(0xF007);
        let mut conflicts = 0usize;
        for round in 0..400 {
            let space = if round % 2 == 0 { 4 } else { 1 << 20 };
            let a = random_set(&mut rng, 12, space);
            let b = random_set(&mut rng, 12, space);
            let want = a.conflicts_with_naive(&b);
            assert_eq!(a.conflicts_with(&b), want, "hash-probe diverged");
            assert_eq!(b.conflicts_with(&a), want, "conflict must be symmetric");
            assert_eq!(
                a.footprint().conflicts_with(&b.footprint()),
                want,
                "footprint path diverged"
            );
            conflicts += want as usize;
        }
        // The tight key space must actually exercise both outcomes.
        assert!(conflicts > 20, "degenerate workload: {conflicts} conflicts");
        assert!(conflicts < 400, "degenerate workload: all conflicting");
    }

    #[test]
    fn footprint_absorb_matches_pairwise_checks() {
        let mut rng = SplitMix64::seed_from_u64(0xABB0);
        for _ in 0..100 {
            let sets: Vec<RwSet> = (0..4).map(|_| random_set(&mut rng, 8, 6)).collect();
            let candidate = random_set(&mut rng, 8, 6);
            let mut agg = Footprint::default();
            for s in &sets {
                agg.absorb(&s.footprint());
            }
            let want = sets.iter().any(|s| s.conflicts_with_naive(&candidate));
            assert_eq!(agg.conflicts_with(&candidate.footprint()), want);
        }
    }

    #[test]
    fn footprint_is_sorted_and_deduplicated() {
        let mut set = RwSet::default();
        for i in [5u64, 1, 9, 1, 5] {
            set.writes
                .insert(SlotKey::Balance(Address::from_low_u64(i)));
            set.reads
                .insert(SlotKey::Storage(Address::from_low_u64(i), U256::from(i)));
        }
        let fp = set.footprint();
        assert!(fp.writes().windows(2).all(|w| w[0] < w[1]));
        assert!(fp.reads().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(fp.writes().len(), 3);
        assert_eq!(fp.len(), 6);
        assert!(!fp.is_empty());
    }

    #[test]
    fn static_rw_set_covers_value_transfers() {
        let t = Transaction::transfer(
            Address::from_low_u64(1),
            Address::from_low_u64(2),
            U256::from(5u64),
            0,
        );
        let s = static_rw_set(&t);
        assert!(s
            .writes
            .contains(&SlotKey::Balance(Address::from_low_u64(1))));
        assert!(s
            .writes
            .contains(&SlotKey::Balance(Address::from_low_u64(2))));
        let zero = Transaction::call(
            Address::from_low_u64(1),
            Address::from_low_u64(2),
            vec![1, 2, 3, 4],
            0,
        );
        assert!(static_rw_set(&zero).writes.is_empty());
    }
}
