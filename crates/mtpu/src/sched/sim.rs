//! Discrete-event simulation of the spatial-temporal scheduler (Fig. 6)
//! and the two comparison baselines: sequential execution and synchronous
//! (barrier-per-round) parallel execution.
//!
//! Scheduling and execution are decoupled: the CPU-side window refills and
//! table updates are off the critical path (paper §3.2.3), so the model
//! charges only the PU-side `select_cycles` per dispatch.

use crate::config::MtpuConfig;
use crate::pu::{Pu, StateBuffer, TxJob, TxTiming};
use crate::sched::depgraph::DepGraph;
use crate::sched::tables::{SchedulingTable, TransactionTable};
use mtpu_primitives::B256;
use std::collections::HashMap;

/// Outcome of scheduling one block.
#[derive(Debug, Clone)]
pub struct ScheduleResult {
    /// Total cycles until the last transaction completed.
    pub makespan: u64,
    /// Per-transaction start cycle.
    pub start: Vec<u64>,
    /// Per-transaction end cycle.
    pub end: Vec<u64>,
    /// PU that executed each transaction.
    pub pu_of: Vec<usize>,
    /// Per-PU busy cycles.
    pub busy: Vec<u64>,
    /// Aggregate execution statistics.
    pub timing: TxTiming,
}

impl ScheduleResult {
    /// Resource utilization: busy cycles over `makespan × PUs`
    /// (paper Fig. 15).
    pub fn utilization(&self) -> f64 {
        if self.makespan == 0 || self.busy.is_empty() {
            return 0.0;
        }
        let total: u64 = self.busy.iter().sum();
        total as f64 / (self.makespan as f64 * self.busy.len() as f64)
    }

    /// Speedup of this schedule relative to `baseline`.
    pub fn speedup_over(&self, baseline: &ScheduleResult) -> f64 {
        if self.makespan == 0 {
            return 0.0;
        }
        baseline.makespan as f64 / self.makespan as f64
    }
}

/// Identity used for redundancy: the top-frame code hash.
fn contract_of(job: &TxJob) -> B256 {
    job.top_code()
}

/// Sequentially executes the block on a single PU in block order
/// (the paper's reference baseline).
pub fn simulate_sequential(jobs: &[TxJob], cfg: &MtpuConfig) -> ScheduleResult {
    let mut pu = Pu::new(0, cfg);
    let mut buffer = StateBuffer::default();
    let n = jobs.len();
    let mut res = ScheduleResult {
        makespan: 0,
        start: vec![0; n],
        end: vec![0; n],
        pu_of: vec![0; n],
        busy: vec![0],
        timing: TxTiming::default(),
    };
    let mut t = 0u64;
    for (i, job) in jobs.iter().enumerate() {
        let timing = pu.execute(job, &mut buffer, cfg);
        res.start[i] = t;
        t += timing.cycles;
        res.end[i] = t;
        res.busy[0] += timing.cycles;
        res.timing.accumulate(&timing);
    }
    res.makespan = t;
    res
}

/// Synchronous execution: per round, up to `pu_count` ready transactions
/// start together and a barrier waits for the slowest (the paper's
/// "synchronous execution of transactions" comparison).
pub fn simulate_sync(jobs: &[TxJob], graph: &DepGraph, cfg: &MtpuConfig) -> ScheduleResult {
    let n = jobs.len();
    let mut pus: Vec<Pu> = (0..cfg.pu_count).map(|i| Pu::new(i, cfg)).collect();
    let mut buffer = StateBuffer::default();
    let mut res = ScheduleResult {
        makespan: 0,
        start: vec![0; n],
        end: vec![0; n],
        pu_of: vec![0; n],
        busy: vec![0; cfg.pu_count],
        timing: TxTiming::default(),
    };
    let mut completed = vec![false; n];
    let mut scheduled = vec![false; n];
    let mut done = 0usize;
    let mut t = 0u64;
    while done < n {
        let ready: Vec<usize> = (0..n)
            .filter(|&i| !scheduled[i] && graph.parents(i).iter().all(|&p| completed[p as usize]))
            .take(cfg.pu_count)
            .collect();
        assert!(!ready.is_empty(), "acyclic DAG always has ready work");
        t += cfg.lat.sync_round_cycles;
        let mut round_end = t;
        for (k, &tx) in ready.iter().enumerate() {
            let timing = pus[k].execute(&jobs[tx], &mut buffer, cfg);
            res.start[tx] = t;
            res.end[tx] = t + timing.cycles;
            res.pu_of[tx] = k;
            res.busy[k] += timing.cycles;
            res.timing.accumulate(&timing);
            round_end = round_end.max(res.end[tx]);
            scheduled[tx] = true;
        }
        for &tx in &ready {
            completed[tx] = true;
            done += 1;
        }
        t = round_end;
    }
    res.makespan = t;
    res
}

/// The spatial-temporal schedule: asynchronous PUs select from the
/// candidate window via the Scheduling/Transaction tables, with
/// redundancy affinity and V-priority.
pub fn simulate_st(jobs: &[TxJob], graph: &DepGraph, cfg: &MtpuConfig) -> ScheduleResult {
    let n = jobs.len();
    let m = cfg.candidate_slots.clamp(1, 64);
    let mut pus: Vec<Pu> = (0..cfg.pu_count).map(|i| Pu::new(i, cfg)).collect();
    let mut buffer = StateBuffer::default();
    let mut res = ScheduleResult {
        makespan: 0,
        start: vec![0; n],
        end: vec![0; n],
        pu_of: vec![0; n],
        busy: vec![0; cfg.pu_count],
        timing: TxTiming::default(),
    };
    if n == 0 {
        return res;
    }

    // Remaining-invocation counts per contract: the composite DAG's node
    // values (V).
    let contracts: Vec<B256> = jobs.iter().map(contract_of).collect();
    let mut remaining: HashMap<B256, u32> = HashMap::new();
    for c in &contracts {
        *remaining.entry(*c).or_default() += 1;
    }

    let mut completed = vec![false; n];
    let mut staged = vec![false; n]; // in window, running, or done
    let mut running: Vec<Option<usize>> = vec![None; cfg.pu_count];
    let mut free_at = vec![0u64; cfg.pu_count];
    let mut window: Vec<Option<usize>> = vec![None; m];
    let mut table = SchedulingTable::new(cfg.pu_count);
    let mut tt = TransactionTable::new(m);
    let mut done = 0usize;

    // CPU-side: stage eligible transactions into empty window slots.
    // Eligible: unstaged, and every parent completed or running (paper
    // §3.2.1: prefer redundancy with running transactions, else max V).
    let refill = |window: &mut Vec<Option<usize>>,
                  tt: &mut TransactionTable,
                  staged: &mut Vec<bool>,
                  completed: &[bool],
                  running: &[Option<usize>],
                  remaining: &HashMap<B256, u32>| {
        let running_contracts: Vec<B256> =
            running.iter().flatten().map(|&tx| contracts[tx]).collect();
        let mut eligible: Vec<usize> = (0..n)
            .filter(|&i| {
                !staged[i]
                    && graph
                        .parents(i)
                        .iter()
                        .all(|&p| completed[p as usize] || running.contains(&Some(p as usize)))
            })
            .collect();
        eligible.sort_by_key(|&i| {
            let redundant = running_contracts.contains(&contracts[i]);
            let v = remaining.get(&contracts[i]).copied().unwrap_or(0);
            // Redundant first, then high V, then block order.
            (!redundant, std::cmp::Reverse(v), i)
        });
        let mut it = eligible.into_iter();
        for (slot, w) in window.iter_mut().enumerate() {
            if w.is_none() {
                if let Some(tx) = it.next() {
                    *w = Some(tx);
                    staged[tx] = true;
                    let v = remaining.get(&contracts[tx]).copied().unwrap_or(0);
                    tt.fill(slot, v, tx as u32);
                }
            }
        }
    };

    // Recompute De/Re rows against the current window (CPU update ③/⑤).
    let update_rows = |table: &mut SchedulingTable,
                       window: &[Option<usize>],
                       running: &[Option<usize>],
                       pus: &[Pu]| {
        for (p, r) in running.iter().enumerate() {
            match r {
                Some(tx) => {
                    let mut de = 0u64;
                    let mut re = 0u64;
                    for (slot, w) in window.iter().enumerate() {
                        if let Some(cand) = w {
                            if graph.parents(*cand).contains(&(*tx as u32)) {
                                de |= 1 << slot;
                            }
                            if contracts[*cand] == contracts[*tx] {
                                re |= 1 << slot;
                            }
                        }
                    }
                    table.set_row(p, de, re);
                }
                None => {
                    // Re affinity survives between transactions: the PU
                    // still holds the last contract's context.
                    let mut re = 0u64;
                    if let Some(last) = pus[p].last_code {
                        for (slot, w) in window.iter().enumerate() {
                            if let Some(cand) = w {
                                if contracts[*cand] == last {
                                    re |= 1 << slot;
                                }
                            }
                        }
                    }
                    table.set_row(p, 0, re);
                }
            }
        }
    };

    while done < n {
        refill(
            &mut window,
            &mut tt,
            &mut staged,
            &completed,
            &running,
            &remaining,
        );
        update_rows(&mut table, &window, &running, &pus);

        // Dispatch to every idle PU, earliest-free first.
        let mut dispatched = false;
        let mut idle: Vec<usize> = (0..cfg.pu_count)
            .filter(|&p| running[p].is_none())
            .collect();
        idle.sort_by_key(|&p| (free_at[p], p));
        for p in idle {
            let mask = table.selectable_mask();
            let re = table.row(p).re;
            if let Some(slot) = tt.select(mask, re) {
                let tx = window[slot].expect("selected slot is occupied");
                assert!(tt.try_lock(slot), "selected slot lockable");
                // PU reads the transaction; CPU clears and refills.
                tt.clear(slot);
                window[slot] = None;
                let t0 = free_at[p] + cfg.lat.select_cycles;
                let timing = pus[p].execute(&jobs[tx], &mut buffer, cfg);
                res.start[tx] = t0;
                res.end[tx] = t0 + timing.cycles;
                res.pu_of[tx] = p;
                res.busy[p] += cfg.lat.select_cycles + timing.cycles;
                res.timing.accumulate(&timing);
                running[p] = Some(tx);
                free_at[p] = res.end[tx];
                *remaining.get_mut(&contracts[tx]).expect("counted") -= 1;
                // Order matters (the paper's dirty-read hazard, §3.2.2):
                // newly staged candidates must have valid De bits before
                // any other PU can see them, so refill precedes the row
                // update.
                refill(
                    &mut window,
                    &mut tt,
                    &mut staged,
                    &completed,
                    &running,
                    &remaining,
                );
                update_rows(&mut table, &window, &running, &pus);
                dispatched = true;
            } else if mtpu_telemetry::enabled() {
                // Classify why the idle PU could not dispatch.
                let m = crate::obs::metrics();
                if window.iter().all(|w| w.is_none()) {
                    m.stall_window_empty.inc();
                } else {
                    m.stall_deps.inc();
                }
            }
        }

        // Advance time: complete the earliest running transaction.
        let next = (0..cfg.pu_count)
            .filter(|&p| running[p].is_some())
            .min_by_key(|&p| (free_at[p], p));
        match next {
            Some(p) => {
                let tx = running[p].take().expect("running");
                completed[tx] = true;
                done += 1;
                table.invalidate(p);
                // Idle PUs that were starved wait until this completion.
                for q in 0..cfg.pu_count {
                    if running[q].is_none() && free_at[q] < free_at[p] {
                        free_at[q] = free_at[p];
                        if mtpu_telemetry::enabled() {
                            crate::obs::metrics().stall_starved.inc();
                        }
                    }
                }
            }
            None => {
                assert!(
                    dispatched || done == n,
                    "scheduler deadlock: no running work and nothing dispatchable"
                );
            }
        }
    }
    res.makespan = res.end.iter().copied().max().unwrap_or(0);
    res
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtpu_evm::opcode::Opcode;
    use mtpu_evm::trace::{CallKind, FrameInfo, TraceStep, TxTrace};
    use mtpu_primitives::Address;

    /// A synthetic job with `len` simple instructions on `contract`.
    fn job(contract: u64, len: usize, cfg: &MtpuConfig) -> TxJob {
        let code_hash = B256::keccak(&contract.to_be_bytes());
        let trace = TxTrace {
            frames: vec![FrameInfo {
                depth: 0,
                kind: CallKind::Call,
                code_address: Address::from_low_u64(contract),
                storage_address: Address::from_low_u64(contract),
                code_hash,
                code_len: 1000,
                input_len: 36,
                selector: None,
            }],
            steps: (0..len)
                .map(|i| TraceStep {
                    frame: 0,
                    pc: (i * 2) as u32,
                    op: if i % 2 == 0 {
                        Opcode::Push1
                    } else {
                        Opcode::Pop
                    } as u8,
                })
                .collect(),
            storage: Vec::new(),
            gas_used: 30_000,
            success: true,
        };
        TxJob::build(&trace, cfg, &crate::stream::StreamTransforms::none())
    }

    fn four_pu_cfg() -> MtpuConfig {
        MtpuConfig {
            pu_count: 4,
            enable_db_cache: false,
            redundancy_opt: false,
            ..MtpuConfig::default()
        }
    }

    #[test]
    fn independent_txs_scale_with_pus() {
        let cfg = four_pu_cfg();
        let jobs: Vec<TxJob> = (0..16).map(|i| job(i, 400, &cfg)).collect();
        let graph = DepGraph::new(jobs.len());
        let seq = simulate_sequential(
            &jobs,
            &MtpuConfig {
                pu_count: 1,
                ..cfg.clone()
            },
        );
        let st = simulate_st(&jobs, &graph, &cfg);
        let speedup = st.speedup_over(&seq);
        assert!(speedup > 3.0, "4 PUs on independent work: {speedup}");
        assert!(st.utilization() > 0.8, "utilization {}", st.utilization());
        assert!(graph.schedule_respects_dag(&st.start, &st.end));
    }

    #[test]
    fn chain_cannot_parallelize() {
        let cfg = four_pu_cfg();
        let jobs: Vec<TxJob> = (0..8).map(|i| job(i, 300, &cfg)).collect();
        let mut graph = DepGraph::new(jobs.len());
        for i in 1..jobs.len() {
            graph.add_edge(i - 1, i);
        }
        let seq = simulate_sequential(
            &jobs,
            &MtpuConfig {
                pu_count: 1,
                ..cfg.clone()
            },
        );
        let st = simulate_st(&jobs, &graph, &cfg);
        assert!(graph.schedule_respects_dag(&st.start, &st.end));
        let speedup = st.speedup_over(&seq);
        assert!(speedup <= 1.05, "a chain is the critical path: {speedup}");
    }

    #[test]
    fn st_beats_sync_on_skewed_durations() {
        // One long-running transaction per round stalls the synchronous
        // barrier; ST keeps other PUs busy.
        let cfg = four_pu_cfg();
        let mut jobs = Vec::new();
        for i in 0..24 {
            jobs.push(job(i, if i % 4 == 0 { 2000 } else { 200 }, &cfg));
        }
        let graph = DepGraph::new(jobs.len());
        let sync = simulate_sync(&jobs, &graph, &cfg);
        let st = simulate_st(&jobs, &graph, &cfg);
        assert!(graph.schedule_respects_dag(&sync.start, &sync.end));
        assert!(
            st.makespan < sync.makespan,
            "st {} vs sync {}",
            st.makespan,
            sync.makespan
        );
    }

    #[test]
    fn redundancy_affinity_groups_same_contract() {
        // 2 contracts, redundancy on: transactions of the same contract
        // should gravitate to the same PU (context reuse).
        let cfg = MtpuConfig {
            pu_count: 2,
            redundancy_opt: true,
            ..MtpuConfig::default()
        };
        let jobs: Vec<TxJob> = (0..12).map(|i| job(i % 2, 300, &cfg)).collect();
        let graph = DepGraph::new(jobs.len());
        let st = simulate_st(&jobs, &graph, &cfg);
        // Count affinity violations: consecutive txs of a contract on
        // different PUs are allowed, but the bulk should stick.
        let mut per_contract_pus: HashMap<u64, Vec<usize>> = HashMap::new();
        for (i, &pu) in st.pu_of.iter().enumerate() {
            per_contract_pus.entry(i as u64 % 2).or_default().push(pu);
        }
        for (_, pus) in per_contract_pus {
            let first = pus[0];
            let same = pus.iter().filter(|&&p| p == first).count();
            assert!(
                same * 10 >= pus.len() * 8,
                "redundant txs mostly share a PU: {pus:?}"
            );
        }
    }

    #[test]
    fn all_txs_complete_exactly_once() {
        let cfg = four_pu_cfg();
        let jobs: Vec<TxJob> = (0..20)
            .map(|i| job(i % 3, 100 + i as usize * 10, &cfg))
            .collect();
        let mut graph = DepGraph::new(jobs.len());
        graph.add_edge(0, 5);
        graph.add_edge(5, 10);
        graph.add_edge(2, 10);
        for sim in [
            simulate_st(&jobs, &graph, &cfg),
            simulate_sync(&jobs, &graph, &cfg),
        ] {
            assert!(graph.schedule_respects_dag(&sim.start, &sim.end));
            for i in 0..jobs.len() {
                assert!(sim.end[i] > sim.start[i], "tx {i} has a duration");
            }
            assert_eq!(sim.makespan, *sim.end.iter().max().unwrap());
        }
    }

    #[test]
    fn empty_block() {
        let cfg = four_pu_cfg();
        let graph = DepGraph::new(0);
        let st = simulate_st(&[], &graph, &cfg);
        assert_eq!(st.makespan, 0);
    }
}
