//! The Scheduling Table and Transaction Table of Fig. 6.
//!
//! The candidate window holds up to *m* transactions staged in main
//! memory by the CPU. Each PU row of the Scheduling Table carries two
//! m-bit vectors: `De` (candidate *i* depends on the transaction this PU
//! is executing) and `Re` (candidate *i* is redundant with it), plus a
//! valid bit that avoids dirty reads during asynchronous CPU updates.
//! The Transaction Table tracks per-candidate locks (L) and priorities
//! (V, the node value of the composite DAG).

/// Maximum candidate-window size (bit vectors are one machine word).
pub const MAX_CANDIDATES: usize = 64;

/// One PU's row of the Scheduling Table.
#[derive(Debug, Clone, Copy, Default)]
pub struct PuRow {
    /// Dependency bits: bit *i* set ⇔ candidate *i* depends on the
    /// transaction this PU is executing.
    pub de: u64,
    /// Redundancy bits: bit *i* set ⇔ candidate *i* calls the same
    /// contract as the transaction this PU is executing.
    pub re: u64,
    /// Valid bit; invalid rows are treated as all-zero `De` (a completed
    /// transaction no longer constrains anyone).
    pub valid: bool,
}

/// The Scheduling Table: one row per PU.
#[derive(Debug, Clone)]
pub struct SchedulingTable {
    rows: Vec<PuRow>,
}

impl SchedulingTable {
    /// A table for `pu_count` processing units.
    pub fn new(pu_count: usize) -> Self {
        SchedulingTable {
            rows: vec![PuRow::default(); pu_count],
        }
    }

    /// Updates PU `pu`'s row (CPU-side operation ③ of Fig. 6).
    pub fn set_row(&mut self, pu: usize, de: u64, re: u64) {
        self.rows[pu] = PuRow {
            de,
            re,
            valid: true,
        };
    }

    /// Invalidates PU `pu`'s row (its transaction completed).
    pub fn invalidate(&mut self, pu: usize) {
        self.rows[pu].valid = false;
    }

    /// The row of PU `pu`.
    pub fn row(&self, pu: usize) -> PuRow {
        self.rows[pu]
    }

    /// Candidates free of dependencies on *any* running transaction —
    /// step ① of the selection flow: the complement of the OR of all
    /// other PUs' valid `De` vectors.
    pub fn selectable_mask(&self) -> u64 {
        let mut blocked = 0u64;
        for r in &self.rows {
            if r.valid {
                blocked |= r.de;
            }
        }
        !blocked
    }
}

/// The Transaction Table: locks and priorities of the candidate window.
#[derive(Debug, Clone)]
pub struct TransactionTable {
    lock: u64,
    v: Vec<u32>,
    /// Block position of the staged transaction (the composite DAG's
    /// priority order); used to break ties toward older transactions.
    order: Vec<u32>,
    occupied: u64,
}

impl TransactionTable {
    /// A table with `m` candidate slots.
    ///
    /// # Panics
    ///
    /// Panics when `m > 64` (bit vectors are one word).
    pub fn new(m: usize) -> Self {
        assert!(m <= MAX_CANDIDATES, "candidate window exceeds one word");
        TransactionTable {
            lock: 0,
            v: vec![0; m],
            order: vec![u32::MAX; m],
            occupied: 0,
        }
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.v.len()
    }

    /// Marks slot `i` occupied with priority `v` and block position
    /// `order`.
    pub fn fill(&mut self, i: usize, v: u32, order: u32) {
        self.occupied |= 1 << i;
        self.lock &= !(1 << i);
        self.v[i] = v;
        self.order[i] = order;
    }

    /// Clears slot `i` (transaction taken and read complete).
    pub fn clear(&mut self, i: usize) {
        self.occupied &= !(1 << i);
        self.lock &= !(1 << i);
        self.v[i] = 0;
        self.order[i] = u32::MAX;
    }

    /// Attempts to lock slot `i` for exclusive read; `false` when already
    /// locked or empty.
    pub fn try_lock(&mut self, i: usize) -> bool {
        let bit = 1u64 << i;
        if self.occupied & bit == 0 || self.lock & bit != 0 {
            return false;
        }
        self.lock |= bit;
        true
    }

    /// Occupied-and-unlocked slots as a bit mask.
    pub fn available_mask(&self) -> u64 {
        self.occupied & !self.lock
    }

    /// Priority of slot `i`.
    pub fn priority(&self, i: usize) -> u32 {
        self.v[i]
    }

    /// Selection step ②: among `mask`-allowed available slots, prefer a
    /// redundancy hit (`re` bit), else the highest V; ties break to the
    /// oldest transaction (block order — the composite DAG's priority
    /// order). Returns the chosen slot.
    pub fn select(&self, mask: u64, re: u64) -> Option<usize> {
        let avail = self.available_mask() & mask;
        if avail == 0 {
            return None;
        }
        let redundant = avail & re;
        if redundant != 0 {
            return (0..self.slots())
                .filter(|&i| redundant & (1 << i) != 0)
                .min_by_key(|&i| self.order[i]);
        }
        (0..self.slots())
            .filter(|&i| avail & (1 << i) != 0)
            .min_by_key(|&i| (std::cmp::Reverse(self.v[i]), self.order[i]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selectable_mask_ors_valid_rows() {
        let mut t = SchedulingTable::new(3);
        t.set_row(0, 0b00100, 0);
        t.set_row(1, 0b00000, 0);
        t.set_row(2, 0b11000, 0);
        // Blocked = 0b11100 -> selectable low bits 0b...00011.
        assert_eq!(t.selectable_mask() & 0b11111, 0b00011);
        t.invalidate(2);
        assert_eq!(t.selectable_mask() & 0b11111, 0b11011);
    }

    #[test]
    fn paper_fig6_walkthrough() {
        // PU0 finishes T0. PU1 runs T1 (De 00100: T4... encoded per slot),
        // PU2 runs Ta (De 00000). Candidates: slots 0..4 = T2,T3,T4,Tb,Tc.
        let mut st = SchedulingTable::new(3);
        st.invalidate(0); // T0 done
        st.set_row(1, 0b00100, 0); // T4 depends on T1
        st.set_row(2, 0b00000, 0);
        let mask = st.selectable_mask();
        // Slots {0,1,3,4} = T2,T3,Tb,Tc selectable.
        assert_eq!(mask & 0b11111, 0b11011);

        let mut tt = TransactionTable::new(5);
        for (i, v) in [(0, 3u32), (1, 3), (2, 3), (3, 1), (4, 2)] {
            tt.fill(i, v, i as u32);
        }
        // PU0's Re marks T2 (slot 0) as redundant: chosen first.
        let re = 0b00101;
        assert_eq!(tt.select(mask, re), Some(0));
        // Without redundancy, the max-V candidate wins.
        assert_eq!(tt.select(mask, 0), Some(0)); // V=3, lowest index
        tt.clear(0);
        tt.clear(1);
        assert_eq!(tt.select(mask, 0), Some(4)); // V=2 beats slot 3's V=1
    }

    #[test]
    fn locks_are_exclusive() {
        let mut tt = TransactionTable::new(4);
        tt.fill(2, 5, 0);
        assert!(tt.try_lock(2));
        assert!(!tt.try_lock(2), "double lock must fail");
        assert_eq!(tt.select(!0, 0), None, "locked slot is unavailable");
        tt.clear(2);
        assert!(!tt.try_lock(2), "empty slot cannot be locked");
    }

    #[test]
    #[should_panic(expected = "one word")]
    fn window_size_bounded() {
        TransactionTable::new(65);
    }
}
