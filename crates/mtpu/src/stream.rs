//! Conversion of a recorded execution trace into the decoded micro-op
//! stream the PU pipeline consumes, applying instruction folding
//! (paper §3.3.4) and the hotspot optimizer's stream transformations
//! (pre-execution skip, constant-instruction elimination, §3.4).

use mtpu_evm::opcode::Opcode;
use mtpu_evm::trace::TxTrace;
use std::collections::HashSet;

/// One decoded micro-operation flowing through the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroOp {
    /// Index of the primary step in the source [`TxTrace::steps`].
    pub step: u32,
    /// Frame index (selects the executing code identity).
    pub frame: u32,
    /// PC of the first constituent instruction (lines are addressed by
    /// the address of the first filled instruction).
    pub pc: u32,
    /// The executing opcode (for a folded pair, the *second* op).
    pub op: Opcode,
    /// A `PUSH` was folded into this op: its immediate operand comes from
    /// the synthetic instruction, not the stack.
    pub const_operand: bool,
    /// Original instruction count this micro-op retires (1, or 2 for a
    /// folded pair).
    pub insn_count: u32,
    /// Storage operand resolved at pre-execution time and prefetched into
    /// the data cache (hotspot optimization §3.4.4).
    pub prefetched: bool,
}

/// Ops a preceding `PUSH` may fold into (the "most common patterns" the
/// fill unit's pattern detector checks, §3.3.4).
pub fn is_foldable_target(op: Opcode) -> bool {
    use Opcode::*;
    matches!(
        op,
        Eq | Lt
            | Gt
            | Slt
            | Sgt
            | And
            | Or
            | Xor
            | Add
            | Sub
            | Shl
            | Shr
            | Jump
            | Jumpi
            | Mstore
            | Mload
            | Sload
    )
}

/// Stream-level transformations requested by the hotspot optimizer.
#[derive(Debug, Clone, Default)]
pub struct StreamTransforms {
    /// Steps to drop entirely: the pre-executed Compare/Check chunks.
    pub skip_steps: HashSet<u32>,
    /// PUSH steps eliminated because their value moved to the Constants
    /// Table; the consuming instruction reads the table instead.
    pub eliminated_pushes: HashSet<u32>,
    /// Steps (consumers of eliminated pushes) whose operand comes from
    /// the Constants Table.
    pub const_operand_steps: HashSet<u32>,
    /// SLOAD steps whose data was prefetched before execution.
    pub prefetched_steps: HashSet<u32>,
}

impl StreamTransforms {
    /// No transformations (hotspot optimization off).
    pub fn none() -> Self {
        StreamTransforms::default()
    }
}

/// Statistics of a stream build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamStats {
    /// Steps dropped by pre-execution.
    pub skipped_preexec: u64,
    /// PUSH instructions eliminated into the Constants Table.
    pub eliminated: u64,
    /// PUSHes folded into their consumers.
    pub folded: u64,
}

/// Builds the micro-op stream for one transaction.
///
/// Order of transformations matches the hardware: pre-executed chunks
/// never reach the pipeline; constant-eliminated PUSHes are absent from
/// the fetched bytecode; folding happens in the fill unit on what remains.
pub fn build_stream(
    trace: &TxTrace,
    enable_folding: bool,
    tr: &StreamTransforms,
) -> (Vec<MicroOp>, StreamStats) {
    let mut stats = StreamStats::default();
    // Phase 1: filter + annotate.
    let mut pending: Vec<MicroOp> = Vec::with_capacity(trace.steps.len());
    for (i, s) in trace.steps.iter().enumerate() {
        let i = i as u32;
        if tr.skip_steps.contains(&i) {
            stats.skipped_preexec += 1;
            continue;
        }
        if tr.eliminated_pushes.contains(&i) {
            stats.eliminated += 1;
            continue;
        }
        pending.push(MicroOp {
            step: i,
            frame: s.frame,
            pc: s.pc,
            op: s.opcode(),
            const_operand: tr.const_operand_steps.contains(&i),
            insn_count: 1,
            prefetched: tr.prefetched_steps.contains(&i),
        });
    }
    if !enable_folding {
        return (pending, stats);
    }
    // Phase 2: fold PUSH + target pairs (adjacent, same frame, and the
    // target actually consumes the pushed value, i.e. consecutive pcs).
    let mut out: Vec<MicroOp> = Vec::with_capacity(pending.len());
    let mut i = 0;
    while i < pending.len() {
        let cur = pending[i];
        if cur.op.is_push() && !cur.const_operand && i + 1 < pending.len() {
            let next = pending[i + 1];
            let contiguous = next.frame == cur.frame
                && next.pc as usize == cur.pc as usize + 1 + cur.op.immediate_len();
            if contiguous && is_foldable_target(next.op) && !next.const_operand {
                out.push(MicroOp {
                    step: next.step,
                    frame: cur.frame,
                    pc: cur.pc,
                    op: next.op,
                    const_operand: true,
                    insn_count: 2,
                    prefetched: next.prefetched,
                });
                stats.folded += 1;
                i += 2;
                continue;
            }
        }
        out.push(cur);
        i += 1;
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtpu_evm::trace::{TraceStep, TxTrace};

    fn trace_of(ops: &[(u32, Opcode)]) -> TxTrace {
        TxTrace {
            steps: ops
                .iter()
                .map(|&(pc, op)| TraceStep {
                    frame: 0,
                    pc,
                    op: op as u8,
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn folds_push_eq_pair() {
        // PUSH4 sel (pc 0, imm 4) ; EQ (pc 5)
        let t = trace_of(&[(0, Opcode::Push4), (5, Opcode::Eq)]);
        let (s, st) = build_stream(&t, true, &StreamTransforms::none());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].op, Opcode::Eq);
        assert_eq!(s[0].pc, 0);
        assert!(s[0].const_operand);
        assert_eq!(s[0].insn_count, 2);
        assert_eq!(st.folded, 1);
    }

    #[test]
    fn no_fold_when_disabled_or_nonadjacent() {
        let t = trace_of(&[(0, Opcode::Push4), (5, Opcode::Eq)]);
        let (s, _) = build_stream(&t, false, &StreamTransforms::none());
        assert_eq!(s.len(), 2);

        // A jump between them (pc mismatch) prevents folding.
        let t = trace_of(&[(0, Opcode::Push4), (9, Opcode::Eq)]);
        let (s, _) = build_stream(&t, true, &StreamTransforms::none());
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn fold_does_not_chain_pushes() {
        // PUSH1 a; PUSH1 b; ADD -> only the second PUSH folds.
        let t = trace_of(&[(0, Opcode::Push1), (2, Opcode::Push1), (4, Opcode::Add)]);
        let (s, st) = build_stream(&t, true, &StreamTransforms::none());
        assert_eq!(s.len(), 2);
        assert_eq!(s[0].op, Opcode::Push1);
        assert_eq!(s[1].op, Opcode::Add);
        assert!(s[1].const_operand);
        assert_eq!(st.folded, 1);
    }

    #[test]
    fn transforms_apply() {
        let t = trace_of(&[
            (0, Opcode::Push1),
            (2, Opcode::Calldataload),
            (3, Opcode::Push1),
            (5, Opcode::Sload),
        ]);
        let tr = StreamTransforms {
            skip_steps: [0u32, 1].into_iter().collect(),
            eliminated_pushes: [2u32].into_iter().collect(),
            const_operand_steps: [3u32].into_iter().collect(),
            prefetched_steps: [3u32].into_iter().collect(),
        };
        let (s, st) = build_stream(&t, true, &tr);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].op, Opcode::Sload);
        assert!(s[0].const_operand);
        assert!(s[0].prefetched);
        assert_eq!(st.skipped_preexec, 2);
        assert_eq!(st.eliminated, 1);
        assert_eq!(st.folded, 0);
    }

    #[test]
    fn jumpi_folds() {
        let t = trace_of(&[(0, Opcode::Push2), (3, Opcode::Jumpi)]);
        let (s, _) = build_stream(&t, true, &StreamTransforms::none());
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].op, Opcode::Jumpi);
    }
}
