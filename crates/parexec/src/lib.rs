//! Wall-clock parallel block execution engine.
//!
//! This crate turns the paper's spatial-temporal DAG schedule (§3.4) into
//! *real* multi-threaded execution on host cores: a pool of worker threads
//! claims transactions whose DAG parents have committed, executes each one
//! speculatively on a [`StateOverlay`] over the immutable pre-block
//! snapshot plus the committed prefix, and commits strictly in canonical
//! block order after re-validating the recorded read set — re-executing on
//! conflict (the Block-STM recipe with a consensus-provided DAG instead of
//! blind speculation).
//!
//! Because commits happen in block order, the committed view at
//! transaction *i*'s commit point is exactly the sequential prefix state,
//! so the final state and receipts are bit-identical to
//! [`mtpu_evm::execute_block`] — the serializability oracle the
//! integration tests enforce.
//!
//! ```
//! use mtpu_evm::{Block, BlockHeader, State, StateOps, Transaction};
//! use mtpu_parexec::ParExecutor;
//! use mtpu_primitives::{Address, U256};
//!
//! let mut base = State::new();
//! base.credit(Address::from_low_u64(1), U256::from(1_000_000_000u64));
//! base.finalize_tx();
//! let block = Block {
//!     header: BlockHeader::default(),
//!     transactions: vec![Transaction::transfer(
//!         Address::from_low_u64(1),
//!         Address::from_low_u64(2),
//!         U256::from(7u64),
//!         0,
//!     )],
//! };
//! let result = ParExecutor::new(4).execute_block(&base, &block);
//! assert!(result.receipts[0].success);
//! assert_eq!(result.state.balance(Address::from_low_u64(2)), U256::from(7u64));
//! ```

pub mod obs;

use mtpu::sched::DepGraph;
use mtpu_evm::executor::execute_transaction;
use mtpu_evm::overlay::{BlockDelta, OverlayedView, ReadSet, StateOverlay, StateRead, TxDelta};
use mtpu_evm::state::State;
use mtpu_evm::trace::NoopTracer;
use mtpu_evm::tx::{Block, BlockHeader, Receipt, Transaction};
use mtpu_primitives::{Address, B256, U256};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, RwLock};
use std::time::{Duration, Instant};

/// How many times a worker re-executes a transaction speculatively after
/// a failed pre-validation before parking it for the commit gate's
/// canonical-order (blocking) re-execution.
pub const DEFAULT_RETRY_CAP: usize = 3;

/// Admission-time prefetch hints for one transaction: the state locations
/// its declared (or trace-derived) read set names. When the transaction
/// becomes ready — its DAG parents have all committed — the hints are
/// forwarded to the base backend via [`StateRead::hint_prefetch_storage`]
/// and [`StateRead::hint_prefetch_account`], so a backend with real read
/// latency (the flat accounts-DB) can overlap its file reads with the
/// queue wait and the dispatch of other transactions. Hints are purely
/// advisory: a wrong or stale hint costs a wasted read, never a wrong
/// result.
#[derive(Debug, Clone, Default)]
pub struct TxHints {
    /// Storage slots the transaction is expected to read.
    pub storage: Vec<(Address, U256)>,
    /// Accounts whose metadata (balance, nonce, code) it will touch.
    pub accounts: Vec<Address>,
}

impl TxHints {
    /// `true` when there is nothing to forward.
    pub fn is_empty(&self) -> bool {
        self.storage.is_empty() && self.accounts.is_empty()
    }
}

/// Forwards one transaction's hints to the backend, with storage keys
/// grouped per address so the backend sees one batch per account.
fn fire_hints<B: StateRead>(base: &B, hints: &TxHints) {
    for &addr in &hints.accounts {
        base.hint_prefetch_account(addr);
    }
    let mut by_addr: std::collections::HashMap<Address, Vec<U256>> =
        std::collections::HashMap::new();
    for &(addr, key) in &hints.storage {
        by_addr.entry(addr).or_default().push(key);
    }
    for (addr, keys) in by_addr {
        base.hint_prefetch_storage(addr, &keys);
    }
}

/// Per-worker execution counters.
#[derive(Debug, Clone, Default)]
pub struct WorkerStats {
    /// Speculative executions (including re-executions) this worker ran.
    pub executed: u64,
    /// Transactions this worker committed while holding the commit gate.
    pub committed: u64,
    /// Read-set validation failures this worker observed (speculative
    /// pre-validation and gate validation).
    pub aborted: u64,
    /// Time spent executing and committing (excludes idle waits on the
    /// ready queue).
    pub busy: Duration,
    /// Time spent parked on the ready queue waiting for work.
    pub idle: Duration,
}

/// What happened while executing one block in parallel.
#[derive(Debug, Clone)]
pub struct BlockStats {
    /// Worker threads used.
    pub threads: usize,
    /// Transactions in the block.
    pub txs: usize,
    /// Total speculative executions (>= `txs`; the excess is re-execution
    /// work caused by conflicts).
    pub executions: u64,
    /// Executions repeated because read-set validation failed — always
    /// `spec_retries + fallbacks`.
    pub reexecutions: u64,
    /// Read-set validation failures observed (speculative pre-validation
    /// plus the commit gate).
    pub conflicts: u64,
    /// Bounded speculative re-executions: a worker re-ran the transaction
    /// because its pre-validation found stale reads, up to the retry cap.
    pub spec_retries: u64,
    /// Canonical-order blocking re-executions: the gate holder re-ran the
    /// transaction against the frozen committed prefix after the
    /// speculative retries were exhausted or raced.
    pub fallbacks: u64,
    /// Wall-clock time for the whole block.
    pub wall: Duration,
    /// Per-worker breakdown, indexed by worker id.
    pub workers: Vec<WorkerStats>,
}

impl BlockStats {
    /// Committed transactions per wall-clock second.
    pub fn tx_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.txs as f64 / secs
    }

    /// Fraction of `threads * wall` the workers spent busy (1.0 = every
    /// core executing for the whole block).
    pub fn utilization(&self) -> f64 {
        let denom = self.wall.as_secs_f64() * self.threads as f64;
        if denom == 0.0 {
            return 0.0;
        }
        let busy: f64 = self.workers.iter().map(|w| w.busy.as_secs_f64()).sum();
        (busy / denom).min(1.0)
    }
}

/// Aggregate statistics over a sustained multi-block run — what the node
/// driver and the `block_pipeline` bench accumulate while blocks stream
/// through the execute/commit pipeline.
#[derive(Debug, Clone, Default)]
pub struct ChainStats {
    /// Blocks absorbed.
    pub blocks: usize,
    /// Transactions committed across all blocks.
    pub txs: usize,
    /// Total speculative executions.
    pub executions: u64,
    /// Re-executions caused by conflicts.
    pub reexecutions: u64,
    /// Read-set validation failures.
    pub conflicts: u64,
    /// Bounded speculative re-executions.
    pub spec_retries: u64,
    /// Canonical-order blocking re-executions.
    pub fallbacks: u64,
    /// Summed per-block execution wall time (excludes inter-block work).
    pub exec_wall: Duration,
}

impl ChainStats {
    /// Folds one block's stats into the running totals.
    pub fn absorb(&mut self, s: &BlockStats) {
        self.blocks += 1;
        self.txs += s.txs;
        self.executions += s.executions;
        self.reexecutions += s.reexecutions;
        self.conflicts += s.conflicts;
        self.spec_retries += s.spec_retries;
        self.fallbacks += s.fallbacks;
        self.exec_wall += s.wall;
    }

    /// Committed transactions per second of summed execution wall time.
    pub fn tx_per_exec_sec(&self) -> f64 {
        let secs = self.exec_wall.as_secs_f64();
        if secs == 0.0 {
            return 0.0;
        }
        self.txs as f64 / secs
    }

    /// Fraction of executions that were conflict repairs.
    pub fn reexec_ratio(&self) -> f64 {
        if self.executions == 0 {
            return 0.0;
        }
        self.reexecutions as f64 / self.executions as f64
    }
}

/// The outcome of one parallel block execution when the caller only
/// needs the *delta* — receipts plus the merged [`BlockDelta`] — and not
/// a materialized post-block [`State`]. This is the result shape for
/// backends (like the flat accounts-DB) where cloning a full in-memory
/// state map per block would defeat the point.
#[derive(Debug)]
pub struct DeltaResult {
    /// Receipts in canonical block order — identical to the sequential
    /// executor's.
    pub receipts: Vec<Receipt>,
    /// The merged block delta, to be absorbed by the caller's backend.
    pub delta: BlockDelta,
    /// Execution statistics.
    pub stats: BlockStats,
}

/// The outcome of one parallel block execution.
#[derive(Debug)]
pub struct BlockResult {
    /// Receipts in canonical block order — identical to the sequential
    /// executor's, including failed pseudo-receipts for invalid
    /// transactions.
    pub receipts: Vec<Receipt>,
    /// The post-block state: `base.clone()` plus every committed delta.
    pub state: State,
    /// The merged block delta (useful to apply to a different copy of the
    /// base without cloning the whole state).
    pub delta: BlockDelta,
    /// Execution statistics.
    pub stats: BlockStats,
}

impl BlockResult {
    /// The canonical Merkle Patricia Trie root of the post-block state,
    /// computed from scratch.
    pub fn merkle_root(&self) -> B256 {
        self.state.merkle_root()
    }

    /// The post-block trie root computed *incrementally*: `base` is fully
    /// committed once, then this block's [`BlockDelta`] is replayed so
    /// only touched accounts' paths re-hash. Must equal
    /// [`BlockResult::merkle_root`] — the authenticated form of the
    /// serializability oracle.
    pub fn delta_merkle_root(&self, base: &State) -> B256 {
        mtpu_evm::delta_merkle_root(base, &self.delta)
    }

    /// Queues this block's incremental commitment on `committer`'s
    /// background thread, returning a [`mtpu_evm::CommitHandle`]
    /// immediately — the caller can start executing the next block while
    /// this block's trie hashing (and, with `persist`, store sync) runs.
    /// `base` must be the pre-block state this result was executed from.
    pub fn submit_commit<S: mtpu_evm::commit::NodeStore + Send + 'static>(
        &self,
        committer: &mtpu_evm::AsyncCommitter<S>,
        base: &State,
        persist: bool,
    ) -> mtpu_evm::CommitHandle {
        committer.submit(base, &self.delta, persist)
    }
}

/// A multi-threaded optimistic block executor.
///
/// Construction is cheap; threads are spawned per block via
/// [`std::thread::scope`], so the executor borrows the base state and
/// block for the duration of the call only.
#[derive(Debug, Clone, Copy)]
pub struct ParExecutor {
    threads: usize,
    retry_cap: usize,
}

impl ParExecutor {
    /// An executor with `threads` workers (clamped to at least 1) and the
    /// default speculative retry cap.
    pub fn new(threads: usize) -> Self {
        ParExecutor {
            threads: threads.max(1),
            retry_cap: DEFAULT_RETRY_CAP,
        }
    }

    /// Sets how many speculative re-executions a worker attempts after a
    /// failed pre-validation before parking the transaction for the commit
    /// gate's canonical-order blocking re-execution. `0` disables
    /// speculative repair entirely (every conflict falls back).
    pub fn with_retry_cap(mut self, cap: usize) -> Self {
        self.retry_cap = cap;
        self
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Speculative re-execution retry cap.
    pub fn retry_cap(&self) -> usize {
        self.retry_cap
    }

    /// Executes `block` against `base` using the sender-nonce-order DAG —
    /// the weakest dependency information a node can always derive without
    /// consensus-stage traces. Conflicts the DAG misses are caught by
    /// read-set validation and repaired by re-execution.
    pub fn execute_block(&self, base: &State, block: &Block) -> BlockResult {
        let dag = DepGraph::sender_order(&block.transactions);
        self.execute_block_with_dag(base, block, &dag)
    }

    /// Executes `block` with an explicit dependency DAG (normally
    /// [`DepGraph::from_conflicts`] built from consensus-stage traces, per
    /// the paper's §2.2.2). A more precise DAG means fewer validation
    /// failures, not different results.
    ///
    /// # Panics
    ///
    /// Panics when `dag.len() != block.transactions.len()`.
    pub fn execute_block_with_dag(
        &self,
        base: &State,
        block: &Block,
        dag: &DepGraph,
    ) -> BlockResult {
        let r = self.execute_block_delta_with_dag(base, block, dag);
        let mut state = base.clone();
        r.delta.apply_to(&mut state);
        BlockResult {
            receipts: r.receipts,
            state,
            delta: r.delta,
            stats: r.stats,
        }
    }

    /// [`ParExecutor::execute_block`] against an arbitrary [`StateRead`]
    /// backend, returning only receipts + delta (no state clone).
    pub fn execute_block_delta<B: StateRead + Sync>(&self, base: &B, block: &Block) -> DeltaResult {
        let dag = DepGraph::sender_order(&block.transactions);
        self.execute_block_delta_with_dag(base, block, &dag)
    }

    /// [`ParExecutor::execute_block_with_dag`] against an arbitrary
    /// [`StateRead`] backend (an in-memory [`State`], the flat accounts-DB,
    /// …), returning only receipts + delta. The base is never cloned; the
    /// caller absorbs the delta into its backend.
    ///
    /// # Panics
    ///
    /// Panics when `dag.len() != block.transactions.len()`.
    pub fn execute_block_delta_with_dag<B: StateRead + Sync>(
        &self,
        base: &B,
        block: &Block,
        dag: &DepGraph,
    ) -> DeltaResult {
        self.execute_block_delta_with_dag_hints(base, block, dag, &[])
    }

    /// [`ParExecutor::execute_block_delta_with_dag`] plus per-transaction
    /// prefetch hints: when transaction `i` becomes ready, `hints[i]` is
    /// forwarded to the backend (see [`TxHints`]) before any worker claims
    /// it, overlapping backend reads with scheduling. Pass an empty slice
    /// for no hints.
    ///
    /// # Panics
    ///
    /// Panics when `dag.len() != block.transactions.len()`, or when
    /// `hints` is non-empty and shorter than the block.
    pub fn execute_block_delta_with_dag_hints<B: StateRead + Sync>(
        &self,
        base: &B,
        block: &Block,
        dag: &DepGraph,
        hints: &[TxHints],
    ) -> DeltaResult {
        assert_eq!(
            dag.len(),
            block.transactions.len(),
            "DAG must cover every transaction of the block"
        );
        assert!(
            hints.is_empty() || hints.len() >= block.transactions.len(),
            "hints must be empty or cover every transaction"
        );
        let n = block.transactions.len();
        let started = Instant::now();
        if n == 0 {
            return DeltaResult {
                receipts: Vec::new(),
                delta: BlockDelta::new(),
                stats: BlockStats {
                    threads: self.threads,
                    txs: 0,
                    executions: 0,
                    reexecutions: 0,
                    conflicts: 0,
                    spec_retries: 0,
                    fallbacks: 0,
                    wall: started.elapsed(),
                    workers: vec![WorkerStats::default(); self.threads],
                },
            };
        }

        let shared = Shared::new(
            base,
            &block.header,
            &block.transactions,
            dag,
            hints,
            self.retry_cap,
        );
        let workers: Vec<WorkerSlot> = (0..self.threads).map(|_| WorkerSlot::default()).collect();

        std::thread::scope(|scope| {
            for (w, slot) in workers.iter().enumerate() {
                let shared = &shared;
                scope.spawn(move || worker_loop(shared, slot, w));
            }
        });

        let wall = started.elapsed();
        let delta = shared.committed.into_inner().expect("no worker panicked");
        let cursor = shared.gate.into_inner().expect("no worker panicked");
        debug_assert_eq!(cursor.next, n, "every transaction must commit");
        let receipts: Vec<Receipt> = cursor
            .receipts
            .into_iter()
            .map(|r| r.expect("committed transactions have receipts"))
            .collect();

        DeltaResult {
            receipts,
            delta,
            stats: BlockStats {
                threads: self.threads,
                txs: n,
                executions: shared.executions.load(Ordering::Relaxed),
                reexecutions: shared.reexecutions.load(Ordering::Relaxed),
                conflicts: shared.conflicts.load(Ordering::Relaxed),
                spec_retries: shared.spec_retries.load(Ordering::Relaxed),
                fallbacks: shared.fallbacks.load(Ordering::Relaxed),
                wall,
                workers: workers.iter().map(WorkerSlot::snapshot).collect(),
            },
        }
    }
}

/// Atomic per-worker counters, snapshotted into [`WorkerStats`] at the end.
#[derive(Debug, Default)]
struct WorkerSlot {
    executed: AtomicU64,
    committed: AtomicU64,
    aborted: AtomicU64,
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

impl WorkerSlot {
    fn snapshot(&self) -> WorkerStats {
        WorkerStats {
            executed: self.executed.load(Ordering::Relaxed),
            committed: self.committed.load(Ordering::Relaxed),
            aborted: self.aborted.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_ns.load(Ordering::Relaxed)),
            idle: Duration::from_nanos(self.idle_ns.load(Ordering::Relaxed)),
        }
    }
}

/// One speculative execution's result, parked until the commit gate
/// reaches it.
struct TxOutcome {
    delta: TxDelta,
    reads: ReadSet,
    receipt: Receipt,
}

/// Commit-order bookkeeping, protected by the gate mutex: the index of the
/// next transaction to commit and the receipts committed so far.
struct CommitCursor {
    next: usize,
    receipts: Vec<Option<Receipt>>,
}

/// Everything the workers share for one block.
struct Shared<'a, B: StateRead + Sync> {
    base: &'a B,
    header: &'a BlockHeader,
    txs: &'a [Transaction],
    dag: &'a DepGraph,
    /// Per-transaction prefetch hints, forwarded to the base when the
    /// transaction becomes ready (empty slice = no hints).
    hints: &'a [TxHints],
    /// Deltas of the committed transaction prefix. Read-locked per access
    /// during speculation; write-locked only by the gate holder to merge.
    committed: RwLock<BlockDelta>,
    /// The commit gate: whoever holds it advances the canonical commit
    /// order (validate → maybe re-execute → merge) as far as outcomes are
    /// available.
    gate: Mutex<CommitCursor>,
    /// Parked speculative outcomes, one slot per transaction.
    outcomes: Vec<Mutex<Option<TxOutcome>>>,
    /// Uncommitted-parent counts; a transaction becomes ready at zero.
    parents_left: Vec<AtomicUsize>,
    ready: Mutex<VecDeque<usize>>,
    wake: Condvar,
    done: AtomicBool,
    retry_cap: usize,
    executions: AtomicU64,
    reexecutions: AtomicU64,
    conflicts: AtomicU64,
    spec_retries: AtomicU64,
    fallbacks: AtomicU64,
}

impl<'a, B: StateRead + Sync> Shared<'a, B> {
    fn new(
        base: &'a B,
        header: &'a BlockHeader,
        txs: &'a [Transaction],
        dag: &'a DepGraph,
        hints: &'a [TxHints],
        retry_cap: usize,
    ) -> Self {
        let n = txs.len();
        let parents_left: Vec<AtomicUsize> = (0..n)
            .map(|i| AtomicUsize::new(dag.parents(i).len()))
            .collect();
        let ready: VecDeque<usize> = (0..n).filter(|&i| dag.parents(i).is_empty()).collect();
        if !hints.is_empty() {
            // The initial ready set is known before any worker starts;
            // hint it now so the backend's reads overlap thread spawn.
            for &i in &ready {
                fire_hints(base, &hints[i]);
            }
        }
        Shared {
            base,
            header,
            txs,
            dag,
            hints,
            committed: RwLock::new(BlockDelta::new()),
            gate: Mutex::new(CommitCursor {
                next: 0,
                receipts: vec![None; n],
            }),
            outcomes: (0..n).map(|_| Mutex::new(None)).collect(),
            parents_left,
            ready: Mutex::new(ready),
            wake: Condvar::new(),
            done: AtomicBool::new(false),
            retry_cap,
            executions: AtomicU64::new(0),
            reexecutions: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
            spec_retries: AtomicU64::new(0),
            fallbacks: AtomicU64::new(0),
        }
    }

    /// Blocks until a transaction is ready or the block is fully
    /// committed. `None` means "no more work, exit".
    fn next_ready(&self) -> Option<usize> {
        let mut queue = self.ready.lock().expect("ready queue poisoned");
        loop {
            if let Some(i) = queue.pop_front() {
                if mtpu_telemetry::enabled() {
                    obs::metrics().queue_depth.record(queue.len() as u64);
                }
                return Some(i);
            }
            if self.done.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.wake.wait(queue).expect("ready queue poisoned");
        }
    }

    /// Enqueues newly-ready transactions and wakes waiters. Holding the
    /// queue lock across the notify closes the race with a worker that
    /// just found the queue empty but has not yet parked.
    fn enqueue(&self, indices: &[usize]) {
        let mut queue = self.ready.lock().expect("ready queue poisoned");
        queue.extend(indices.iter().copied());
        self.wake.notify_all();
    }

    fn finish(&self) {
        self.done.store(true, Ordering::SeqCst);
        let _queue = self.ready.lock().expect("ready queue poisoned");
        self.wake.notify_all();
    }
}

/// The committed-prefix view used during speculation: every read takes a
/// short read-lock on the committed [`BlockDelta`]. The prefix may advance
/// *between* reads — [`ReadSet`] poisoning catches executions that
/// observed an inconsistent cut, and commit-time validation catches the
/// rest.
struct LockingView<'a, B: StateRead> {
    base: &'a B,
    committed: &'a RwLock<BlockDelta>,
}

impl<B: StateRead> LockingView<'_, B> {
    fn with_view<R>(&self, f: impl FnOnce(&OverlayedView<'_, B>) -> R) -> R {
        let guard = self.committed.read().expect("committed delta poisoned");
        f(&OverlayedView {
            base: self.base,
            delta: &guard,
        })
    }
}

impl<B: StateRead> StateRead for LockingView<'_, B> {
    fn read_exists(&self, addr: Address) -> bool {
        self.with_view(|v| v.read_exists(addr))
    }
    fn read_balance(&self, addr: Address) -> U256 {
        self.with_view(|v| v.read_balance(addr))
    }
    fn read_nonce(&self, addr: Address) -> u64 {
        self.with_view(|v| v.read_nonce(addr))
    }
    fn read_code(&self, addr: Address) -> Vec<u8> {
        self.with_view(|v| v.read_code(addr))
    }
    fn read_code_hash(&self, addr: Address) -> B256 {
        self.with_view(|v| v.read_code_hash(addr))
    }
    fn read_storage(&self, addr: Address, key: U256) -> U256 {
        self.with_view(|v| v.read_storage(addr, key))
    }
    fn read_storage_many(&self, addr: Address, keys: &[U256], out: &mut Vec<U256>) {
        // One read-lock for the whole batch — the point of the batched
        // path; per-key locking would also let the prefix advance between
        // keys of one prefetch batch.
        self.with_view(|v| v.read_storage_many(addr, keys, out));
    }
    fn hint_prefetch_storage(&self, addr: Address, keys: &[U256]) {
        self.base.hint_prefetch_storage(addr, keys);
    }
    fn hint_prefetch_account(&self, addr: Address) {
        self.base.hint_prefetch_account(addr);
    }
}

/// Runs one transaction on a fresh overlay over `view`. Invalid
/// transactions yield the same failed pseudo-receipt as the sequential
/// executor; their (empty) delta still merges cleanly and their read set
/// still validates, because the *decision* to reject depends on the reads.
fn run_tx<B: StateRead>(view: &B, header: &BlockHeader, tx: &Transaction) -> TxOutcome {
    let mut overlay = StateOverlay::new(view);
    let receipt = match execute_transaction(&mut overlay, header, tx, &mut NoopTracer) {
        Ok(r) => r,
        Err(_) => Receipt {
            success: false,
            gas_used: 0,
            logs: Vec::new(),
            output: Vec::new(),
            created: None,
        },
    };
    let (delta, reads) = overlay.into_parts();
    TxOutcome {
        delta,
        reads,
        receipt,
    }
}

fn worker_loop<B: StateRead + Sync>(shared: &Shared<'_, B>, slot: &WorkerSlot, worker: usize) {
    if mtpu_telemetry::enabled() {
        mtpu_telemetry::name_thread(&format!("worker{worker}"));
    }
    loop {
        let idle_started = Instant::now();
        let claimed = shared.next_ready();
        let idle = idle_started.elapsed().as_nanos() as u64;
        slot.idle_ns.fetch_add(idle, Ordering::Relaxed);
        if mtpu_telemetry::enabled() {
            obs::metrics().idle_ns.add(idle);
        }
        let Some(i) = claimed else {
            return;
        };

        let busy_started = Instant::now();
        let span = mtpu_telemetry::span("exec", "parexec").arg("tx", i);
        let view = LockingView {
            base: shared.base,
            committed: &shared.committed,
        };
        let mut outcome = run_tx(&view, shared.header, &shared.txs[i]);
        shared.executions.fetch_add(1, Ordering::Relaxed);
        slot.executed.fetch_add(1, Ordering::Relaxed);

        // Bounded speculative repair: pre-validate against the (moving)
        // committed prefix and re-execute while it finds stale reads, up
        // to the cap. A transaction that keeps losing this race parks its
        // last outcome anyway — the commit gate re-executes it against the
        // frozen prefix (the canonical-order blocking fallback), so the
        // cap bounds wasted work without risking livelock or divergence.
        let mut retries = 0;
        while retries < shared.retry_cap {
            let stale = {
                let committed = shared.committed.read().expect("committed delta poisoned");
                let view = OverlayedView {
                    base: shared.base,
                    delta: &committed,
                };
                outcome.reads.validate_detailed(&view)
            };
            let Err(kind) = stale else {
                break;
            };
            shared.conflicts.fetch_add(1, Ordering::Relaxed);
            slot.aborted.fetch_add(1, Ordering::Relaxed);
            if mtpu_telemetry::enabled() {
                let m = obs::metrics();
                m.aborts.inc();
                m.spec_retries.inc();
                m.validation_fail(kind).inc();
            }
            retries += 1;
            shared.spec_retries.fetch_add(1, Ordering::Relaxed);
            shared.reexecutions.fetch_add(1, Ordering::Relaxed);
            shared.executions.fetch_add(1, Ordering::Relaxed);
            slot.executed.fetch_add(1, Ordering::Relaxed);
            outcome = run_tx(&view, shared.header, &shared.txs[i]);
        }

        *shared.outcomes[i].lock().expect("outcome slot poisoned") = Some(outcome);
        drop(span);
        drain_commits(shared, slot);
        let busy = busy_started.elapsed().as_nanos() as u64;
        slot.busy_ns.fetch_add(busy, Ordering::Relaxed);
        if mtpu_telemetry::enabled() {
            obs::metrics().busy_ns.add(busy);
        }
    }
}

/// Takes the commit gate and commits as many transactions as have parked
/// outcomes, in canonical order. Validation failures re-execute under the
/// gate against the frozen prefix view, which is exactly the sequential
/// prefix state — so the repaired outcome is definitively correct.
fn drain_commits<B: StateRead + Sync>(shared: &Shared<'_, B>, slot: &WorkerSlot) {
    let mut cursor = shared.gate.lock().expect("commit gate poisoned");
    loop {
        let i = cursor.next;
        if i >= shared.txs.len() {
            shared.finish();
            return;
        }
        let Some(mut outcome) = shared.outcomes[i]
            .lock()
            .expect("outcome slot poisoned")
            .take()
        else {
            // Not executed yet; whoever parks it will re-take the gate.
            return;
        };

        let stale = {
            let committed = shared.committed.read().expect("committed delta poisoned");
            let view = OverlayedView {
                base: shared.base,
                delta: &committed,
            };
            outcome.reads.validate_detailed(&view)
        };
        if let Err(kind) = stale {
            shared.conflicts.fetch_add(1, Ordering::Relaxed);
            shared.fallbacks.fetch_add(1, Ordering::Relaxed);
            shared.reexecutions.fetch_add(1, Ordering::Relaxed);
            shared.executions.fetch_add(1, Ordering::Relaxed);
            slot.executed.fetch_add(1, Ordering::Relaxed);
            slot.aborted.fetch_add(1, Ordering::Relaxed);
            if mtpu_telemetry::enabled() {
                let m = obs::metrics();
                m.aborts.inc();
                m.fallbacks.inc();
                m.validation_fail(kind).inc();
            }
            // While we hold the gate no one else can merge, so the
            // committed view is frozen — this re-execution cannot race.
            let span = mtpu_telemetry::span("fallback", "parexec").arg("tx", i);
            let committed = shared.committed.read().expect("committed delta poisoned");
            let view = OverlayedView {
                base: shared.base,
                delta: &committed,
            };
            outcome = run_tx(&view, shared.header, &shared.txs[i]);
            drop(span);
        }

        {
            let span = mtpu_telemetry::span("commit", "parexec").arg("tx", i);
            let mut committed = shared.committed.write().expect("committed delta poisoned");
            committed.merge(&outcome.delta, shared.base);
            drop(span);
        }
        cursor.receipts[i] = Some(outcome.receipt);
        cursor.next = i + 1;
        slot.committed.fetch_add(1, Ordering::Relaxed);
        if mtpu_telemetry::enabled() {
            obs::metrics().commits.inc();
        }

        let mut newly_ready = Vec::new();
        for &child in shared.dag.children(i) {
            if shared.parents_left[child as usize].fetch_sub(1, Ordering::SeqCst) == 1 {
                newly_ready.push(child as usize);
            }
        }
        if !newly_ready.is_empty() {
            if !shared.hints.is_empty() {
                // Hint before enqueueing: the backend starts its reads
                // while the waking worker is still claiming the index.
                for &r in &newly_ready {
                    fire_hints(shared.base, &shared.hints[r]);
                }
            }
            shared.enqueue(&newly_ready);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtpu_evm::execute_block as sequential;
    use mtpu_workloads::{BlockConfig, Generator};

    fn funded(addrs: &[Address]) -> State {
        let mut st = State::new();
        for &a in addrs {
            st.credit(a, U256::from(10_000_000_000u64));
        }
        st.finalize_tx();
        st
    }

    fn assert_matches_sequential(base: &State, block: &Block, threads: usize) -> BlockStats {
        let mut seq_state = base.clone();
        let seq_receipts = sequential(&mut seq_state, block);
        let result = ParExecutor::new(threads).execute_block(base, block);
        assert_eq!(result.receipts, seq_receipts);
        assert_eq!(result.state.state_root(), seq_state.state_root());
        result.stats
    }

    #[test]
    fn empty_block() {
        let base = State::new();
        let block = Block {
            header: BlockHeader::default(),
            transactions: Vec::new(),
        };
        let result = ParExecutor::new(4).execute_block(&base, &block);
        assert!(result.receipts.is_empty());
        assert_eq!(result.state.state_root(), base.state_root());
        assert_eq!(result.stats.executions, 0);
    }

    #[test]
    fn independent_transfers_match_sequential() {
        let users: Vec<Address> = (1..=8).map(Address::from_low_u64).collect();
        let base = funded(&users);
        let block = Block {
            header: BlockHeader::default(),
            transactions: (0..4)
                .map(|i| Transaction::transfer(users[i], users[i + 4], U256::from(i as u64 + 1), 0))
                .collect(),
        };
        for threads in [1, 2, 4] {
            let stats = assert_matches_sequential(&base, &block, threads);
            assert_eq!(stats.txs, 4);
            assert!(stats.executions >= 4);
        }
    }

    #[test]
    fn dependent_chain_matches_sequential() {
        // A -> B -> C -> D hot-potato: every tx spends money it received
        // in the previous tx, the worst case for speculation.
        let users: Vec<Address> = (1..=5).map(Address::from_low_u64).collect();
        let base = funded(&[users[0]]);
        let amount = U256::from(1_000_000u64);
        let block = Block {
            header: BlockHeader::default(),
            transactions: (0..4)
                .map(|i| Transaction::transfer(users[i], users[i + 1], amount, 0))
                .collect(),
        };
        for threads in [1, 2, 4] {
            assert_matches_sequential(&base, &block, threads);
        }
    }

    #[test]
    fn invalid_transactions_get_pseudo_receipts() {
        let a = Address::from_low_u64(1);
        let b = Address::from_low_u64(2);
        let base = funded(&[a]);
        let block = Block {
            header: BlockHeader::default(),
            transactions: vec![
                Transaction::transfer(a, b, U256::ONE, 0),
                // Wrong nonce: rejected by the sequential executor too.
                Transaction::transfer(a, b, U256::ONE, 7),
                // Unfunded sender.
                Transaction::transfer(b, a, U256::from(1u64 << 40), 0),
            ],
        };
        let stats = assert_matches_sequential(&base, &block, 4);
        assert_eq!(stats.txs, 3);
    }

    #[test]
    fn generated_blocks_match_sequential_with_both_dags() {
        for (seed, ratio) in [(11u64, 0.0), (12, 0.5), (13, 1.0)] {
            let mut generator = Generator::new(seed);
            let prepared = generator.prepared_block(&BlockConfig {
                tx_count: 32,
                dependent_ratio: ratio,
                erc20_ratio: None,
                sct_ratio: 0.9,
                chain_bias: 0.5,
                focus: None,
            });
            let base = prepared.state_before.clone();
            let mut seq_state = base.clone();
            let seq_receipts = sequential(&mut seq_state, &prepared.block);

            for threads in [1, 4] {
                let exec = ParExecutor::new(threads);
                let with_sender = exec.execute_block(&base, &prepared.block);
                assert_eq!(with_sender.receipts, seq_receipts);
                assert_eq!(with_sender.state.state_root(), seq_state.state_root());

                let with_dag = exec.execute_block_with_dag(&base, &prepared.block, &prepared.graph);
                assert_eq!(with_dag.receipts, seq_receipts);
                assert_eq!(with_dag.state.state_root(), seq_state.state_root());
            }
        }
    }

    #[test]
    fn hinted_execution_matches_unhinted() {
        let mut generator = Generator::new(21);
        let prepared = generator.prepared_block(&BlockConfig {
            tx_count: 24,
            dependent_ratio: 0.4,
            erc20_ratio: None,
            sct_ratio: 0.9,
            chain_bias: 0.5,
            focus: None,
        });
        let base = prepared.state_before.clone();
        let mut seq_state = base.clone();
        let seq_receipts = sequential(&mut seq_state, &prepared.block);

        // Hints derived from senders/recipients plus some deliberately
        // bogus slots: advisory data must never change the outcome.
        let hints: Vec<TxHints> = prepared
            .block
            .transactions
            .iter()
            .map(|tx| TxHints {
                storage: vec![
                    (tx.to.unwrap_or(tx.from), U256::ZERO),
                    (tx.from, U256::from(123456u64)),
                ],
                accounts: vec![tx.from, tx.to.unwrap_or(tx.from)],
            })
            .collect();

        for threads in [1, 4] {
            let exec = ParExecutor::new(threads);
            let r = exec.execute_block_delta_with_dag_hints(
                &base,
                &prepared.block,
                &prepared.graph,
                &hints,
            );
            assert_eq!(r.receipts, seq_receipts);
            let mut st = base.clone();
            r.delta.apply_to(&mut st);
            assert_eq!(st.state_root(), seq_state.state_root());
        }
    }

    #[test]
    fn merkle_roots_match_sequential_and_incremental_paths() {
        let mut generator = Generator::new(77);
        let prepared = generator.prepared_block(&BlockConfig {
            tx_count: 24,
            dependent_ratio: 0.5,
            erc20_ratio: None,
            sct_ratio: 0.9,
            chain_bias: 0.5,
            focus: None,
        });
        let base = prepared.state_before.clone();
        let mut seq_state = base.clone();
        sequential(&mut seq_state, &prepared.block);
        let want = seq_state.merkle_root();

        for threads in [1, 4] {
            let result = ParExecutor::new(threads).execute_block(&base, &prepared.block);
            assert_eq!(result.merkle_root(), want);
            assert_eq!(result.delta_merkle_root(&base), want);
        }
    }

    #[test]
    fn chain_stats_accumulate_across_blocks() {
        let users: Vec<Address> = (1..=8).map(Address::from_low_u64).collect();
        let base = funded(&users);
        let exec = ParExecutor::new(2);
        let mut chain = ChainStats::default();
        let mut state = base.clone();
        for nonce in 0..3u64 {
            let block = Block {
                header: BlockHeader::default(),
                transactions: (0..4)
                    .map(|i| Transaction::transfer(users[i], users[i + 4], U256::from(7u64), nonce))
                    .collect(),
            };
            let result = exec.execute_block(&state, &block);
            chain.absorb(&result.stats);
            state = result.state;
        }
        assert_eq!(chain.blocks, 3);
        assert_eq!(chain.txs, 12);
        assert_eq!(chain.executions, 12 + chain.reexecutions);
        assert!(chain.tx_per_exec_sec() > 0.0);
        assert!(chain.reexec_ratio() < 1.0);
    }

    #[test]
    fn stats_account_for_every_commit() {
        let users: Vec<Address> = (1..=6).map(Address::from_low_u64).collect();
        let base = funded(&users);
        let block = Block {
            header: BlockHeader::default(),
            transactions: (0..3)
                .map(|i| Transaction::transfer(users[i], users[i + 3], U256::from(5u64), 0))
                .collect(),
        };
        let result = ParExecutor::new(2).execute_block(&base, &block);
        let stats = &result.stats;
        let committed: u64 = stats.workers.iter().map(|w| w.committed).sum();
        let executed: u64 = stats.workers.iter().map(|w| w.executed).sum();
        assert_eq!(committed, 3);
        assert_eq!(executed, stats.executions);
        assert_eq!(stats.executions, stats.txs as u64 + stats.reexecutions);
        assert_eq!(stats.reexecutions, stats.spec_retries + stats.fallbacks);
        assert!(stats.tx_per_sec() > 0.0);
        assert!(stats.utilization() <= 1.0);
    }

    #[test]
    fn high_conflict_block_bounds_retries_and_matches_sequential() {
        // Many distinct senders all paying one recipient: every pair
        // conflicts on the shared balance, but the sender-order DAG sees
        // no dependencies — the worst case for speculation.
        let senders: Vec<Address> = (1..=32).map(Address::from_low_u64).collect();
        let sink = Address::from_low_u64(999);
        let base = funded(&senders);
        let block = Block {
            header: BlockHeader::default(),
            transactions: senders
                .iter()
                .map(|&s| Transaction::transfer(s, sink, U256::from(3u64), 0))
                .collect(),
        };
        let mut seq_state = base.clone();
        let seq_receipts = sequential(&mut seq_state, &block);

        for cap in [0, 1, DEFAULT_RETRY_CAP] {
            let exec = ParExecutor::new(8).with_retry_cap(cap);
            assert_eq!(exec.retry_cap(), cap);
            let result = exec.execute_block(&base, &block);
            assert_eq!(result.receipts, seq_receipts);
            assert_eq!(result.state.state_root(), seq_state.state_root());
            let stats = &result.stats;
            assert_eq!(stats.reexecutions, stats.spec_retries + stats.fallbacks);
            assert_eq!(stats.executions, stats.txs as u64 + stats.reexecutions);
            // The cap bounds per-transaction speculative repair work.
            assert!(stats.spec_retries <= cap as u64 * stats.txs as u64);
            if cap == 0 {
                assert_eq!(stats.spec_retries, 0, "cap 0 disables speculative repair");
            }
            let aborted: u64 = stats.workers.iter().map(|w| w.aborted).sum();
            assert_eq!(aborted, stats.conflicts);
        }
    }
}
