//! Telemetry wiring for the parallel executor: cached handles into the
//! global [`mtpu_telemetry`] registry.
//!
//! All recording is gated on [`mtpu_telemetry::enabled`]; the worker hot
//! paths pay one relaxed atomic load per instrumented point when disabled.

use mtpu_evm::overlay::StaleRead;
use mtpu_telemetry::{Counter, Histogram};
use std::sync::OnceLock;

/// Cached handles for the parallel executor's metrics.
pub struct ParexecMetrics {
    /// Transactions committed at the gate (`parexec.commit`).
    pub commits: Counter,
    /// Read-set validations that failed (`parexec.abort`).
    pub aborts: Counter,
    /// Bounded speculative re-executions before parking
    /// (`parexec.reexec.speculative`).
    pub spec_retries: Counter,
    /// Canonical-order blocking re-executions under the commit gate after
    /// the retry cap was exhausted (`parexec.reexec.fallback`).
    pub fallbacks: Counter,
    /// Ready-queue depth sampled at each claim (`parexec.queue_depth`).
    pub queue_depth: Histogram,
    /// Nanoseconds workers spent parked on the ready queue
    /// (`parexec.worker.idle_ns`).
    pub idle_ns: Counter,
    /// Nanoseconds workers spent executing and committing
    /// (`parexec.worker.busy_ns`).
    pub busy_ns: Counter,
    /// Validation failures by stale-key kind
    /// (`parexec.validation_fail.<label>`).
    vfail: [Counter; 6],
}

impl ParexecMetrics {
    /// The failure counter for one stale-read kind.
    pub fn validation_fail(&self, kind: StaleRead) -> &Counter {
        let i = match kind {
            StaleRead::Poisoned => 0,
            StaleRead::Exists => 1,
            StaleRead::Balance => 2,
            StaleRead::Nonce => 3,
            StaleRead::Code => 4,
            StaleRead::Storage => 5,
        };
        &self.vfail[i]
    }
}

/// The process-wide cached handle set.
pub fn metrics() -> &'static ParexecMetrics {
    static METRICS: OnceLock<ParexecMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = mtpu_telemetry::global();
        let vfail = [
            StaleRead::Poisoned,
            StaleRead::Exists,
            StaleRead::Balance,
            StaleRead::Nonce,
            StaleRead::Code,
            StaleRead::Storage,
        ]
        .map(|k| reg.counter(&format!("parexec.validation_fail.{}", k.label())));
        ParexecMetrics {
            commits: reg.counter("parexec.commit"),
            aborts: reg.counter("parexec.abort"),
            spec_retries: reg.counter("parexec.reexec.speculative"),
            fallbacks: reg.counter("parexec.reexec.fallback"),
            queue_depth: reg.histogram("parexec.queue_depth"),
            idle_ns: reg.counter("parexec.worker.idle_ns"),
            busy_ns: reg.counter("parexec.worker.busy_ns"),
            vfail,
        }
    })
}
