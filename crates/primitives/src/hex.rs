//! Minimal hexadecimal encode/decode helpers (no external dependency).

use core::fmt;

/// Error returned by [`decode`] on malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeHexError {
    /// The input length is odd.
    OddLength,
    /// A character is not a hexadecimal digit; carries its byte offset.
    InvalidDigit(usize),
}

impl fmt::Display for DecodeHexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeHexError::OddLength => f.write_str("odd number of hex digits"),
            DecodeHexError::InvalidDigit(i) => write!(f, "invalid hex digit at offset {i}"),
        }
    }
}

impl std::error::Error for DecodeHexError {}

/// Encodes bytes as lowercase hex without a prefix.
///
/// ```
/// assert_eq!(mtpu_primitives::hex::encode(&[0xde, 0xad]), "dead");
/// ```
pub fn encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
    }
    s
}

/// Decodes a hex string (no prefix, case-insensitive).
///
/// # Errors
///
/// Returns [`DecodeHexError`] for odd lengths or non-hex characters.
pub fn decode(s: &str) -> Result<Vec<u8>, DecodeHexError> {
    let s = s.as_bytes();
    if !s.len().is_multiple_of(2) {
        return Err(DecodeHexError::OddLength);
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    for (i, pair) in s.chunks_exact(2).enumerate() {
        let hi = (pair[0] as char)
            .to_digit(16)
            .ok_or(DecodeHexError::InvalidDigit(i * 2))?;
        let lo = (pair[1] as char)
            .to_digit(16)
            .ok_or(DecodeHexError::InvalidDigit(i * 2 + 1))?;
        out.push(((hi << 4) | lo) as u8);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let data = vec![0u8, 1, 0x7f, 0x80, 0xff];
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn case_insensitive() {
        assert_eq!(decode("DeAdBeEf").unwrap(), vec![0xde, 0xad, 0xbe, 0xef]);
    }

    #[test]
    fn errors() {
        assert_eq!(decode("abc"), Err(DecodeHexError::OddLength));
        assert_eq!(decode("zz"), Err(DecodeHexError::InvalidDigit(0)));
        assert_eq!(decode("az"), Err(DecodeHexError::InvalidDigit(1)));
    }

    #[test]
    fn empty() {
        assert_eq!(encode(&[]), "");
        assert_eq!(decode("").unwrap(), Vec::<u8>::new());
    }
}
