//! Keccak-256 as used by Ethereum (original Keccak padding `0x01`, *not*
//! the NIST SHA-3 `0x06` domain byte), implemented from scratch on the
//! Keccak-f\[1600\] permutation.
//!
//! The permutation state is a flat `[u64; 25]` in the standard lane
//! order `A[x, y] = state[x + 5 * y]` — the same order the sponge
//! absorbs rate bytes in, so absorption XORs lanes sequentially — and
//! every round runs theta/rho/pi/chi fully unrolled: the rho rotation
//! constants and pi lane permutation are baked into straight-line code
//! instead of being looked up per lane. This sits on the hot path of
//! every SHA3/CREATE2 opcode, storage-trie key and trie node hash.

/// Keccak-f[1600] round constants.
const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Sponge rate in bytes for Keccak-256 (1088-bit rate).
const RATE: usize = 136;

/// Applies the Keccak-f[1600] permutation to a flat 25-lane state
/// (`A[x, y] = a[x + 5 * y]`), with each round's theta/rho/pi/chi steps
/// fully unrolled.
fn keccak_f(a: &mut [u64; 25]) {
    for &rc in &RC {
        // Theta: column parities, then XOR each column's D into it.
        let c0 = a[0] ^ a[5] ^ a[10] ^ a[15] ^ a[20];
        let c1 = a[1] ^ a[6] ^ a[11] ^ a[16] ^ a[21];
        let c2 = a[2] ^ a[7] ^ a[12] ^ a[17] ^ a[22];
        let c3 = a[3] ^ a[8] ^ a[13] ^ a[18] ^ a[23];
        let c4 = a[4] ^ a[9] ^ a[14] ^ a[19] ^ a[24];
        let d0 = c4 ^ c1.rotate_left(1);
        let d1 = c0 ^ c2.rotate_left(1);
        let d2 = c1 ^ c3.rotate_left(1);
        let d3 = c2 ^ c4.rotate_left(1);
        let d4 = c3 ^ c0.rotate_left(1);
        a[0] ^= d0;
        a[1] ^= d1;
        a[2] ^= d2;
        a[3] ^= d3;
        a[4] ^= d4;
        a[5] ^= d0;
        a[6] ^= d1;
        a[7] ^= d2;
        a[8] ^= d3;
        a[9] ^= d4;
        a[10] ^= d0;
        a[11] ^= d1;
        a[12] ^= d2;
        a[13] ^= d3;
        a[14] ^= d4;
        a[15] ^= d0;
        a[16] ^= d1;
        a[17] ^= d2;
        a[18] ^= d3;
        a[19] ^= d4;
        a[20] ^= d0;
        a[21] ^= d1;
        a[22] ^= d2;
        a[23] ^= d3;
        a[24] ^= d4;
        // Rho + pi: b[y + 5*((2x + 3y) % 5)] = rotl(a[x + 5y], rho[x][y]).
        let b0 = a[0];
        let b16 = a[5].rotate_left(36);
        let b7 = a[10].rotate_left(3);
        let b23 = a[15].rotate_left(41);
        let b14 = a[20].rotate_left(18);
        let b10 = a[1].rotate_left(1);
        let b1 = a[6].rotate_left(44);
        let b17 = a[11].rotate_left(10);
        let b8 = a[16].rotate_left(45);
        let b24 = a[21].rotate_left(2);
        let b20 = a[2].rotate_left(62);
        let b11 = a[7].rotate_left(6);
        let b2 = a[12].rotate_left(43);
        let b18 = a[17].rotate_left(15);
        let b9 = a[22].rotate_left(61);
        let b5 = a[3].rotate_left(28);
        let b21 = a[8].rotate_left(55);
        let b12 = a[13].rotate_left(25);
        let b3 = a[18].rotate_left(21);
        let b19 = a[23].rotate_left(56);
        let b15 = a[4].rotate_left(27);
        let b6 = a[9].rotate_left(20);
        let b22 = a[14].rotate_left(39);
        let b13 = a[19].rotate_left(8);
        let b4 = a[24].rotate_left(14);
        // Chi, row by row, then iota.
        a[0] = b0 ^ (!b1 & b2);
        a[1] = b1 ^ (!b2 & b3);
        a[2] = b2 ^ (!b3 & b4);
        a[3] = b3 ^ (!b4 & b0);
        a[4] = b4 ^ (!b0 & b1);
        a[5] = b5 ^ (!b6 & b7);
        a[6] = b6 ^ (!b7 & b8);
        a[7] = b7 ^ (!b8 & b9);
        a[8] = b8 ^ (!b9 & b5);
        a[9] = b9 ^ (!b5 & b6);
        a[10] = b10 ^ (!b11 & b12);
        a[11] = b11 ^ (!b12 & b13);
        a[12] = b12 ^ (!b13 & b14);
        a[13] = b13 ^ (!b14 & b10);
        a[14] = b14 ^ (!b10 & b11);
        a[15] = b15 ^ (!b16 & b17);
        a[16] = b16 ^ (!b17 & b18);
        a[17] = b17 ^ (!b18 & b19);
        a[18] = b18 ^ (!b19 & b15);
        a[19] = b19 ^ (!b15 & b16);
        a[20] = b20 ^ (!b21 & b22);
        a[21] = b21 ^ (!b22 & b23);
        a[22] = b22 ^ (!b23 & b24);
        a[23] = b23 ^ (!b24 & b20);
        a[24] = b24 ^ (!b20 & b21);
        a[0] ^= rc;
    }
}

/// XORs one rate-sized block into the first 17 lanes and permutes.
fn absorb_block(state: &mut [u64; 25], block: &[u8]) {
    debug_assert_eq!(block.len(), RATE);
    for (lane, chunk) in state[..RATE / 8].iter_mut().zip(block.chunks_exact(8)) {
        *lane ^= u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    keccak_f(state);
}

/// Incremental Keccak-256 hasher.
///
/// ```
/// use mtpu_primitives::keccak::Keccak256;
/// let mut h = Keccak256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), mtpu_primitives::keccak256(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Keccak256 {
    state: [u64; 25],
    buffer: [u8; RATE],
    buffered: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Keccak256 {
            state: [0; 25],
            buffer: [0; RATE],
            buffered: 0,
        }
    }
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs `data` into the sponge. Whole rate-sized blocks are
    /// absorbed straight from `data`; only partial tails are staged in
    /// the internal buffer.
    pub fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        if self.buffered > 0 {
            let take = (RATE - self.buffered).min(rest.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == RATE {
                let buffer = self.buffer;
                absorb_block(&mut self.state, &buffer);
                self.buffered = 0;
            }
        }
        while rest.len() >= RATE {
            absorb_block(&mut self.state, &rest[..RATE]);
            rest = &rest[RATE..];
        }
        if !rest.is_empty() {
            self.buffer[..rest.len()].copy_from_slice(rest);
            self.buffered = rest.len();
        }
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // Original Keccak multi-rate padding: 0x01 ... 0x80.
        self.buffer[self.buffered..].fill(0);
        self.buffer[self.buffered] ^= 0x01;
        self.buffer[RATE - 1] ^= 0x80;
        let buffer = self.buffer;
        absorb_block(&mut self.state, &buffer);

        let mut out = [0u8; 32];
        for (i, lane) in self.state[..4].iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&lane.to_le_bytes());
        }
        out
    }
}

/// One-shot Keccak-256 digest of `data`.
///
/// ```
/// let d = mtpu_primitives::keccak256(b"");
/// assert_eq!(d[0], 0xc5);
/// ```
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn erc20_transfer_selector() {
        // keccak("transfer(address,uint256)")[..4] == a9059cbb — the most
        // recognizable constant in Ethereum.
        let d = keccak256(b"transfer(address,uint256)");
        assert_eq!(&d[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    fn long_input_spanning_blocks() {
        // 1000 bytes crosses several 136-byte rate blocks.
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let whole = keccak256(&data);
        // Same data absorbed in awkward chunk sizes must agree.
        let mut h = Keccak256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn rate_boundary_inputs() {
        for len in [RATE - 1, RATE, RATE + 1, 2 * RATE] {
            let data = vec![0xabu8; len];
            let d1 = keccak256(&data);
            let mut h = Keccak256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "len={len}");
        }
    }

    #[test]
    fn rate_boundary_known_digests() {
        // Digests of the byte sequence 0, 1, 2, ... at the one- and
        // two-block sponge boundaries (135/136/137 and 271/272/273
        // bytes), pinned against the pre-rewrite implementation, which
        // was itself validated against the standard Keccak-256 vectors.
        let vectors: [(usize, &str); 6] = [
            (
                135,
                "cbdfd9dee5faad3818d6b06f95a219fd290b0e1706f6a82e5a595b9ce9faca62",
            ),
            (
                136,
                "7ce759f1ab7f9ce437719970c26b0a66ff11fe3e38e17df89cf5d29c7d7f807e",
            ),
            (
                137,
                "ac73d4fae68b8453f764007c1a20ce95994187861f0c3227a3a8e99a73a3b1db",
            ),
            (
                271,
                "7c974895b2a88303ff2dc6b58f438ceb0b298cac91099ac0539cc0f477506191",
            ),
            (
                272,
                "fdf2ec49e749960d3c8521a0219af8d03e30e2b3bf19bd16150ee0eaf133d66e",
            ),
            (
                273,
                "4f707289a9c3ccd0c4a51f2f17339f5dd171d371c04ff7783b735b5b22682eaf",
            ),
        ];
        for (len, want) in vectors {
            let data: Vec<u8> = (0..len).map(|i| i as u8).collect();
            assert_eq!(hex(&keccak256(&data)), want, "len={len}");
            // The same input fed byte-by-byte must cross the rate
            // boundary identically.
            let mut h = Keccak256::new();
            for b in &data {
                h.update(std::slice::from_ref(b));
            }
            assert_eq!(hex(&h.finalize()), want, "len={len} streamed");
        }
    }

    #[test]
    fn known_vector_helloworld() {
        assert_eq!(
            hex(&keccak256(b"hello world")),
            "47173285a8d7341e5e972fc677286384f802f8ef42a5ec5f03bbfa254cb01fad"
        );
    }
}
