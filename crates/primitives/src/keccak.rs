//! Keccak-256 as used by Ethereum (original Keccak padding `0x01`, *not*
//! the NIST SHA-3 `0x06` domain byte), implemented from scratch on the
//! Keccak-f\[1600\] permutation.

/// Keccak-f[1600] round constants.
const RC: [u64; 24] = [
    0x0000000000000001,
    0x0000000000008082,
    0x800000000000808a,
    0x8000000080008000,
    0x000000000000808b,
    0x0000000080000001,
    0x8000000080008081,
    0x8000000000008009,
    0x000000000000008a,
    0x0000000000000088,
    0x0000000080008009,
    0x000000008000000a,
    0x000000008000808b,
    0x800000000000008b,
    0x8000000000008089,
    0x8000000000008003,
    0x8000000000008002,
    0x8000000000000080,
    0x000000000000800a,
    0x800000008000000a,
    0x8000000080008081,
    0x8000000000008080,
    0x0000000080000001,
    0x8000000080008008,
];

/// Rotation offsets (rho step), indexed `[x][y]`.
const RHO: [[u32; 5]; 5] = [
    [0, 36, 3, 41, 18],
    [1, 44, 10, 45, 2],
    [62, 6, 43, 15, 61],
    [28, 55, 25, 21, 56],
    [27, 20, 39, 8, 14],
];

/// Sponge rate in bytes for Keccak-256 (1088-bit rate).
const RATE: usize = 136;

/// Applies the Keccak-f[1600] permutation to a 5×5 lane state.
#[allow(clippy::needless_range_loop)] // the x/y lane indices mirror the spec
fn keccak_f(state: &mut [[u64; 5]; 5]) {
    for &rc in &RC {
        // Theta.
        let mut c = [0u64; 5];
        for (x, cx) in c.iter_mut().enumerate() {
            *cx = state[x][0] ^ state[x][1] ^ state[x][2] ^ state[x][3] ^ state[x][4];
        }
        for x in 0..5 {
            let d = c[(x + 4) % 5] ^ c[(x + 1) % 5].rotate_left(1);
            for y in 0..5 {
                state[x][y] ^= d;
            }
        }
        // Rho and pi.
        let mut b = [[0u64; 5]; 5];
        for x in 0..5 {
            for y in 0..5 {
                b[y][(2 * x + 3 * y) % 5] = state[x][y].rotate_left(RHO[x][y]);
            }
        }
        // Chi.
        for x in 0..5 {
            for y in 0..5 {
                state[x][y] = b[x][y] ^ (!b[(x + 1) % 5][y] & b[(x + 2) % 5][y]);
            }
        }
        // Iota.
        state[0][0] ^= rc;
    }
}

/// Incremental Keccak-256 hasher.
///
/// ```
/// use mtpu_primitives::keccak::Keccak256;
/// let mut h = Keccak256::new();
/// h.update(b"ab");
/// h.update(b"c");
/// assert_eq!(h.finalize(), mtpu_primitives::keccak256(b"abc"));
/// ```
#[derive(Clone, Debug)]
pub struct Keccak256 {
    state: [[u64; 5]; 5],
    buffer: [u8; RATE],
    buffered: usize,
}

impl Default for Keccak256 {
    fn default() -> Self {
        Keccak256 {
            state: [[0; 5]; 5],
            buffer: [0; RATE],
            buffered: 0,
        }
    }
}

impl Keccak256 {
    /// Creates a fresh hasher.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs `data` into the sponge.
    pub fn update(&mut self, data: &[u8]) {
        let mut rest = data;
        while !rest.is_empty() {
            let take = (RATE - self.buffered).min(rest.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&rest[..take]);
            self.buffered += take;
            rest = &rest[take..];
            if self.buffered == RATE {
                self.absorb_block();
            }
        }
    }

    fn absorb_block(&mut self) {
        for i in 0..RATE / 8 {
            let mut lane = [0u8; 8];
            lane.copy_from_slice(&self.buffer[i * 8..i * 8 + 8]);
            let (x, y) = (i % 5, i / 5);
            self.state[x][y] ^= u64::from_le_bytes(lane);
        }
        keccak_f(&mut self.state);
        self.buffered = 0;
    }

    /// Finishes the hash and returns the 32-byte digest.
    pub fn finalize(mut self) -> [u8; 32] {
        // Original Keccak multi-rate padding: 0x01 ... 0x80.
        self.buffer[self.buffered..].fill(0);
        self.buffer[self.buffered] ^= 0x01;
        self.buffer[RATE - 1] ^= 0x80;
        self.buffered = RATE;
        self.absorb_block();

        let mut out = [0u8; 32];
        for i in 0..4 {
            let (x, y) = (i % 5, i / 5);
            out[i * 8..i * 8 + 8].copy_from_slice(&self.state[x][y].to_le_bytes());
        }
        out
    }
}

/// One-shot Keccak-256 digest of `data`.
///
/// ```
/// let d = mtpu_primitives::keccak256(b"");
/// assert_eq!(d[0], 0xc5);
/// ```
pub fn keccak256(data: &[u8]) -> [u8; 32] {
    let mut h = Keccak256::new();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn empty_input() {
        assert_eq!(
            hex(&keccak256(b"")),
            "c5d2460186f7233c927e7db2dcc703c0e500b653ca82273b7bfad8045d85a470"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&keccak256(b"abc")),
            "4e03657aea45a94fc7d47ba826c8d667c0d1e6e33a64a036ec44f58fa12d6c45"
        );
    }

    #[test]
    fn erc20_transfer_selector() {
        // keccak("transfer(address,uint256)")[..4] == a9059cbb — the most
        // recognizable constant in Ethereum.
        let d = keccak256(b"transfer(address,uint256)");
        assert_eq!(&d[..4], &[0xa9, 0x05, 0x9c, 0xbb]);
    }

    #[test]
    fn long_input_spanning_blocks() {
        // 1000 bytes crosses several 136-byte rate blocks.
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let whole = keccak256(&data);
        // Same data absorbed in awkward chunk sizes must agree.
        let mut h = Keccak256::new();
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), whole);
    }

    #[test]
    fn rate_boundary_inputs() {
        for len in [RATE - 1, RATE, RATE + 1, 2 * RATE] {
            let data = vec![0xabu8; len];
            let d1 = keccak256(&data);
            let mut h = Keccak256::new();
            h.update(&data[..len / 2]);
            h.update(&data[len / 2..]);
            assert_eq!(h.finalize(), d1, "len={len}");
        }
    }

    #[test]
    fn known_vector_helloworld() {
        assert_eq!(
            hex(&keccak256(b"hello world")),
            "47173285a8d7341e5e972fc677286384f802f8ef42a5ec5f03bbfa254cb01fad"
        );
    }
}
