//! Core primitive types for the MTPU reproduction: 256-bit machine words,
//! Keccak-256, RLP, and fixed-size byte newtypes.
//!
//! Everything in this crate is implemented from scratch (no external
//! dependencies): the EVM substrate and the accelerator model sit on top of
//! exactly these definitions.
//!
//! ```
//! use mtpu_primitives::{keccak256, Address, U256};
//!
//! let slot = U256::ZERO;
//! let holder = Address::from_low_u64(7);
//! // Solidity mapping slot: keccak256(key . slot)
//! let mut buf = [0u8; 64];
//! buf[..32].copy_from_slice(&holder.to_u256().to_be_bytes());
//! buf[32..].copy_from_slice(&slot.to_be_bytes());
//! let _mapping_slot = U256::from_be_bytes(keccak256(&buf));
//! ```

pub mod hex;
pub mod keccak;
pub mod rlp;
mod types;
mod u256;

pub use keccak::keccak256;
pub use types::{Address, ParseBytesError, B256};
pub use u256::{ParseU256Error, U256};

#[cfg(test)]
mod proptests {
    use crate::U256;
    use proptest::prelude::*;

    fn arb_u256() -> impl Strategy<Value = U256> {
        prop::array::uniform4(any::<u64>()).prop_map(U256::from_limbs)
    }

    proptest! {
        #[test]
        fn add_commutes(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn add_associates(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
            prop_assert_eq!((a + b) + c, a + (b + c));
        }

        #[test]
        fn sub_inverts_add(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a + b - b, a);
        }

        #[test]
        fn mul_commutes(a in arb_u256(), b in arb_u256()) {
            prop_assert_eq!(a * b, b * a);
        }

        #[test]
        fn mul_distributes(a in arb_u256(), b in arb_u256(), c in arb_u256()) {
            prop_assert_eq!(a * (b + c), a * b + a * c);
        }

        #[test]
        fn div_rem_reconstructs(a in arb_u256(), b in arb_u256()) {
            prop_assume!(!b.is_zero());
            let (q, r) = a.div_rem(b).unwrap();
            prop_assert!(r < b);
            prop_assert_eq!(q * b + r, a);
        }

        #[test]
        fn div_matches_u128(a in any::<u128>(), b in 1..=u128::MAX) {
            let (q, r) = U256::from(a).div_rem(U256::from(b)).unwrap();
            prop_assert_eq!(q, U256::from(a / b));
            prop_assert_eq!(r, U256::from(a % b));
        }

        #[test]
        fn mulmod_matches_naive_small(a in any::<u64>(), b in any::<u64>(), m in 1..=u64::MAX) {
            let expect = ((a as u128) * (b as u128) % (m as u128)) as u64;
            prop_assert_eq!(
                U256::from(a).mulmod(U256::from(b), U256::from(m)),
                U256::from(expect)
            );
        }

        #[test]
        fn addmod_result_in_range(a in arb_u256(), b in arb_u256(), m in arb_u256()) {
            prop_assume!(!m.is_zero());
            prop_assert!(a.addmod(b, m) < m);
        }

        #[test]
        fn addmod_matches_u128(a in any::<u64>(), b in any::<u64>(), m in 1..=u64::MAX) {
            let expect = ((a as u128 + b as u128) % m as u128) as u64;
            prop_assert_eq!(
                U256::from(a).addmod(U256::from(b), U256::from(m)),
                U256::from(expect)
            );
        }

        #[test]
        fn shifts_compose(a in arb_u256(), s in 0usize..256) {
            prop_assert_eq!((a >> s) << s, a & (U256::MAX << s));
            prop_assert_eq!((a << s) >> s, a & (U256::MAX >> s));
        }

        #[test]
        fn sar_matches_shr_for_nonnegative(a in arb_u256(), s in 0u64..256) {
            let a = a & !U256::SIGN_BIT; // clear the sign bit
            prop_assert_eq!(a.evm_sar(U256::from(s)), a.evm_shr(U256::from(s)));
        }

        #[test]
        fn twos_neg_is_involution(a in arb_u256()) {
            prop_assert_eq!(a.twos_neg().twos_neg(), a);
        }

        #[test]
        fn sdiv_smod_reconstruct(a in arb_u256(), b in arb_u256()) {
            prop_assume!(!b.is_zero());
            // a == sdiv(a,b) * b + smod(a,b)  (all wrapping)
            let q = a.evm_sdiv(b);
            let r = a.evm_smod(b);
            prop_assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
        }

        #[test]
        fn be_bytes_round_trip(a in arb_u256()) {
            prop_assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
        }

        #[test]
        fn decimal_round_trip(a in arb_u256()) {
            let s = a.to_string();
            prop_assert_eq!(U256::from_str_dec(&s).unwrap(), a);
        }

        #[test]
        fn hex_round_trip(a in arb_u256()) {
            let s = format!("{:x}", a);
            prop_assert_eq!(U256::from_str_hex(&s).unwrap(), a);
        }

        #[test]
        fn signextend_idempotent(a in arb_u256(), i in 0u64..32) {
            let once = a.signextend(U256::from(i));
            prop_assert_eq!(once.signextend(U256::from(i)), once);
        }

        #[test]
        fn rlp_round_trip_bytes(data in prop::collection::vec(any::<u8>(), 0..200)) {
            let item = crate::rlp::Item::bytes(data);
            let enc = crate::rlp::encode(&item);
            prop_assert_eq!(crate::rlp::decode(&enc).unwrap(), item);
        }

        #[test]
        fn keccak_incremental_matches_oneshot(
            data in prop::collection::vec(any::<u8>(), 0..600),
            split in 0usize..600,
        ) {
            let split = split.min(data.len());
            let mut h = crate::keccak::Keccak256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            prop_assert_eq!(h.finalize(), crate::keccak256(&data));
        }
    }
}
