//! Core primitive types for the MTPU reproduction: 256-bit machine words,
//! Keccak-256, RLP, and fixed-size byte newtypes.
//!
//! Everything in this crate is implemented from scratch (no external
//! dependencies): the EVM substrate and the accelerator model sit on top of
//! exactly these definitions.
//!
//! ```
//! use mtpu_primitives::{keccak256, Address, U256};
//!
//! let slot = U256::ZERO;
//! let holder = Address::from_low_u64(7);
//! // Solidity mapping slot: keccak256(key . slot)
//! let mut buf = [0u8; 64];
//! buf[..32].copy_from_slice(&holder.to_u256().to_be_bytes());
//! buf[32..].copy_from_slice(&slot.to_be_bytes());
//! let _mapping_slot = U256::from_be_bytes(keccak256(&buf));
//! ```

pub mod hex;
pub mod keccak;
pub mod prng;
pub mod rlp;
mod types;
mod u256;

pub use keccak::keccak256;
pub use prng::SplitMix64;
pub use types::{Address, ParseBytesError, B256};
pub use u256::{ParseU256Error, U256};

#[cfg(test)]
mod randomized_tests {
    //! Randomized algebraic properties of U256/RLP/Keccak, driven by the
    //! in-repo [`SplitMix64`] generator (deterministic, offline — the
    //! former `proptest` suite recast so the tier-1 build needs no
    //! external crates).

    use crate::{SplitMix64, U256};

    const CASES: usize = 256;

    fn arb_u256(rng: &mut SplitMix64) -> U256 {
        // Mix full-width words with small/extreme values so carry and
        // boundary paths are all exercised.
        match rng.random_range(0..6) {
            0 => U256::from(rng.next_u64()),
            1 => U256::from(rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)),
            2 => U256::ZERO,
            3 => U256::MAX,
            _ => U256::from_limbs([
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
                rng.next_u64(),
            ]),
        }
    }

    #[test]
    fn add_commutes_and_associates() {
        let mut rng = SplitMix64::new(0xA11CE);
        for _ in 0..CASES {
            let (a, b, c) = (arb_u256(&mut rng), arb_u256(&mut rng), arb_u256(&mut rng));
            assert_eq!(a + b, b + a);
            assert_eq!((a + b) + c, a + (b + c));
            assert_eq!(a + b - b, a);
        }
    }

    #[test]
    fn mul_commutes_and_distributes() {
        let mut rng = SplitMix64::new(0xB0B);
        for _ in 0..CASES {
            let (a, b, c) = (arb_u256(&mut rng), arb_u256(&mut rng), arb_u256(&mut rng));
            assert_eq!(a * b, b * a);
            assert_eq!(a * (b + c), a * b + a * c);
        }
    }

    #[test]
    fn div_rem_reconstructs() {
        let mut rng = SplitMix64::new(0xD1);
        for _ in 0..CASES {
            let a = arb_u256(&mut rng);
            let b = arb_u256(&mut rng);
            if b.is_zero() {
                continue;
            }
            let (q, r) = a.div_rem(b).unwrap();
            assert!(r < b);
            assert_eq!(q * b + r, a);
        }
    }

    #[test]
    fn div_matches_u128() {
        let mut rng = SplitMix64::new(0xD2);
        for _ in 0..CASES {
            let a = rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64);
            let b = (rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)).max(1);
            let (q, r) = U256::from(a).div_rem(U256::from(b)).unwrap();
            assert_eq!(q, U256::from(a / b));
            assert_eq!(r, U256::from(a % b));
        }
    }

    #[test]
    fn mulmod_and_addmod_match_naive_small() {
        let mut rng = SplitMix64::new(0xC3);
        for _ in 0..CASES {
            let a = rng.next_u64();
            let b = rng.next_u64();
            let m = rng.next_u64().max(1);
            let mul = ((a as u128) * (b as u128) % (m as u128)) as u64;
            assert_eq!(
                U256::from(a).mulmod(U256::from(b), U256::from(m)),
                U256::from(mul)
            );
            let add = ((a as u128 + b as u128) % m as u128) as u64;
            assert_eq!(
                U256::from(a).addmod(U256::from(b), U256::from(m)),
                U256::from(add)
            );
        }
    }

    #[test]
    fn addmod_result_in_range() {
        let mut rng = SplitMix64::new(0xC4);
        for _ in 0..CASES {
            let (a, b, m) = (arb_u256(&mut rng), arb_u256(&mut rng), arb_u256(&mut rng));
            if m.is_zero() {
                continue;
            }
            assert!(a.addmod(b, m) < m);
        }
    }

    #[test]
    fn shifts_compose() {
        let mut rng = SplitMix64::new(0x5E1F);
        for _ in 0..CASES {
            let a = arb_u256(&mut rng);
            let s = rng.random_range(0..256) as usize;
            assert_eq!((a >> s) << s, a & (U256::MAX << s));
            assert_eq!((a << s) >> s, a & (U256::MAX >> s));
        }
    }

    #[test]
    fn sar_matches_shr_for_nonnegative() {
        let mut rng = SplitMix64::new(0x5A);
        for _ in 0..CASES {
            let a = arb_u256(&mut rng) & !U256::SIGN_BIT;
            let s = U256::from(rng.random_range(0..256));
            assert_eq!(a.evm_sar(s), a.evm_shr(s));
        }
    }

    #[test]
    fn twos_neg_is_involution_and_sdiv_smod_reconstruct() {
        let mut rng = SplitMix64::new(0x51);
        for _ in 0..CASES {
            let a = arb_u256(&mut rng);
            assert_eq!(a.twos_neg().twos_neg(), a);
            let b = arb_u256(&mut rng);
            if b.is_zero() {
                continue;
            }
            // a == sdiv(a,b) * b + smod(a,b)  (all wrapping)
            let q = a.evm_sdiv(b);
            let r = a.evm_smod(b);
            assert_eq!(q.wrapping_mul(b).wrapping_add(r), a);
        }
    }

    #[test]
    fn encodings_round_trip() {
        let mut rng = SplitMix64::new(0xE0);
        for _ in 0..CASES {
            let a = arb_u256(&mut rng);
            assert_eq!(U256::from_be_bytes(a.to_be_bytes()), a);
            assert_eq!(U256::from_str_dec(&a.to_string()).unwrap(), a);
            assert_eq!(U256::from_str_hex(&format!("{a:x}")).unwrap(), a);
        }
    }

    #[test]
    fn signextend_idempotent() {
        let mut rng = SplitMix64::new(0x51E);
        for _ in 0..CASES {
            let a = arb_u256(&mut rng);
            let i = U256::from(rng.random_range(0..32));
            let once = a.signextend(i);
            assert_eq!(once.signextend(i), once);
        }
    }

    #[test]
    fn rlp_round_trip_bytes() {
        let mut rng = SplitMix64::new(0x12F);
        for _ in 0..128 {
            let len = rng.random_range(0..200) as usize;
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            let item = crate::rlp::Item::bytes(data);
            let enc = crate::rlp::encode(&item);
            assert_eq!(crate::rlp::decode(&enc).unwrap(), item);
        }
    }

    #[test]
    fn keccak_incremental_matches_oneshot() {
        let mut rng = SplitMix64::new(0xCEC);
        for _ in 0..64 {
            let len = rng.random_range(0..600) as usize;
            let mut data = vec![0u8; len];
            rng.fill_bytes(&mut data);
            let split = if len == 0 {
                0
            } else {
                rng.random_range(0..len as u64 + 1) as usize
            };
            let mut h = crate::keccak::Keccak256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), crate::keccak256(&data));
        }
    }
}
