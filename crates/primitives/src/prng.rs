//! A small deterministic PRNG so workload generation and randomized tests
//! need no external crates and reproduce byte-for-byte across runs.
//!
//! The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA '14): a single
//! 64-bit counter pushed through a finalizing mixer. It is not
//! cryptographic — it only has to decorrelate workload draws — but it
//! passes BigCrush, is seedable from one word, and every draw is O(1).

use core::ops::Range;

/// SplitMix64 pseudo-random number generator.
///
/// ```
/// use mtpu_primitives::prng::SplitMix64;
///
/// let mut a = SplitMix64::new(7);
/// let mut b = SplitMix64::new(7);
/// assert_eq!(a.next_u64(), b.next_u64()); // same seed, same stream
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// `rand`-style constructor name, kept for call-site familiarity.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `range` (half-open, must be nonempty).
    ///
    /// Uses the widening-multiply reduction (Lemire), whose bias over a
    /// 64-bit source is ≤ 2⁻⁶⁴·span — irrelevant for workload generation.
    ///
    /// # Panics
    ///
    /// Panics when `range` is empty.
    pub fn random_range(&mut self, range: Range<u64>) -> u64 {
        assert!(range.start < range.end, "empty random_range");
        let span = range.end - range.start;
        let hi = ((self.next_u64() as u128 * span as u128) >> 64) as u64;
        range.start + hi
    }

    /// A uniform index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics when `len == 0`.
    pub fn random_index(&mut self, len: usize) -> usize {
        self.random_range(0..len as u64) as usize
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn random_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // 53 uniform mantissa bits are plenty for workload knobs.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Fills `buf` with random bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let w = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_stream() {
        // First outputs for seed 1234567, cross-checked against the
        // published SplitMix64 reference implementation.
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 0x599e_d017_fb08_fc85);
    }

    #[test]
    fn determinism() {
        let mut a = SplitMix64::new(99);
        let mut b = SplitMix64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_bounds_hold() {
        let mut rng = SplitMix64::new(3);
        for _ in 0..10_000 {
            let v = rng.random_range(10..17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn bool_probability_tracks_p() {
        let mut rng = SplitMix64::new(11);
        let hits = (0..20_000).filter(|_| rng.random_bool(0.25)).count();
        let ratio = hits as f64 / 20_000.0;
        assert!((ratio - 0.25).abs() < 0.02, "ratio {ratio}");
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = SplitMix64::new(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
