//! Recursive Length Prefix (RLP) encoding and decoding, the serialization
//! format Ethereum uses for transactions and blocks (paper §2.1, Fig. 3).

use crate::u256::U256;
use core::fmt;

/// An RLP item: either a byte string or a list of items.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Item {
    /// A byte string.
    Bytes(Vec<u8>),
    /// A (possibly nested) list.
    List(Vec<Item>),
}

impl Item {
    /// Convenience constructor for a byte-string item.
    pub fn bytes(b: Vec<u8>) -> Item {
        Item::Bytes(b)
    }

    /// Encodes an unsigned integer as a minimal big-endian byte string
    /// (canonical RLP integer form: no leading zeros, empty for zero).
    pub fn uint(v: u64) -> Item {
        Item::u256(U256::from(v))
    }

    /// Encodes a [`U256`] canonically. The minimal byte form is written
    /// through a stack buffer ([`U256::write_be_into`]) so the only
    /// allocation is the exact-length payload itself.
    pub fn u256(v: U256) -> Item {
        let mut buf = [0u8; 32];
        let first = v.write_be_into(&mut buf);
        Item::Bytes(buf[first..].to_vec())
    }

    /// Returns the byte string, or `None` for lists.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Item::Bytes(b) => Some(b),
            Item::List(_) => None,
        }
    }

    /// Returns the item list, or `None` for byte strings.
    pub fn as_list(&self) -> Option<&[Item]> {
        match self {
            Item::List(l) => Some(l),
            Item::Bytes(_) => None,
        }
    }

    /// Decodes this item's payload as a canonical unsigned integer.
    ///
    /// # Errors
    ///
    /// Fails on lists, on payloads longer than 32 bytes, and on
    /// non-canonical leading zeros.
    pub fn to_u256(&self) -> Result<U256, DecodeError> {
        let b = self.as_bytes().ok_or(DecodeError::ExpectedBytes)?;
        if b.len() > 32 {
            return Err(DecodeError::IntegerTooLarge);
        }
        if b.first() == Some(&0) {
            return Err(DecodeError::NonCanonicalInteger);
        }
        Ok(U256::from_be_slice(b))
    }
}

/// Serializes an item to its RLP byte representation. Lengths are
/// precomputed ([`encoded_len`]) so the encoding is written in one pass
/// into a single exactly-sized buffer — no intermediate payload
/// buffers, which matters on the trie-node hashing hot path.
pub fn encode(item: &Item) -> Vec<u8> {
    let mut out = Vec::with_capacity(encoded_len(item));
    encode_into(item, &mut out);
    out
}

/// Serializes a sequence of items as an RLP list.
pub fn encode_list(items: &[Item]) -> Vec<u8> {
    let payload: usize = items.iter().map(encoded_len).sum();
    let mut out = Vec::with_capacity(payload + 9);
    write_length(0xc0, payload, &mut out);
    for it in items {
        encode_into(it, &mut out);
    }
    out
}

/// Exact length in bytes of [`encode`]'s output for `item`.
pub fn encoded_len(item: &Item) -> usize {
    match item {
        Item::Bytes(b) => {
            if b.len() == 1 && b[0] < 0x80 {
                1
            } else {
                length_len(b.len()) + b.len()
            }
        }
        Item::List(items) => {
            let payload: usize = items.iter().map(encoded_len).sum();
            length_len(payload) + payload
        }
    }
}

fn encode_into(item: &Item, out: &mut Vec<u8>) {
    match item {
        Item::Bytes(b) => {
            if b.len() == 1 && b[0] < 0x80 {
                out.push(b[0]);
            } else {
                write_length(0x80, b.len(), out);
                out.extend_from_slice(b);
            }
        }
        Item::List(items) => {
            let payload: usize = items.iter().map(encoded_len).sum();
            write_length(0xc0, payload, out);
            for it in items {
                encode_into(it, out);
            }
        }
    }
}

/// Bytes a length prefix occupies (header byte plus any big-endian
/// length bytes).
fn length_len(len: usize) -> usize {
    if len <= 55 {
        1
    } else {
        1 + (8 - (len as u64).leading_zeros() as usize / 8)
    }
}

fn write_length(offset: u8, len: usize, out: &mut Vec<u8>) {
    if len <= 55 {
        out.push(offset + len as u8);
    } else {
        let be = (len as u64).to_be_bytes();
        let first = be.iter().position(|&b| b != 0).expect("len > 55");
        out.push(offset + 55 + (8 - first) as u8);
        out.extend_from_slice(&be[first..]);
    }
}

/// Error produced while decoding RLP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Input ended before the announced payload.
    UnexpectedEnd,
    /// A length prefix was not minimally encoded.
    NonCanonicalLength,
    /// A single byte < 0x80 was wrapped in a string header.
    NonCanonicalByte,
    /// Extra bytes remained after the top-level item.
    TrailingBytes,
    /// Expected a byte string but found a list.
    ExpectedBytes,
    /// Expected a list but found a byte string.
    ExpectedList,
    /// An integer payload had a leading zero byte.
    NonCanonicalInteger,
    /// An integer payload exceeded 256 bits.
    IntegerTooLarge,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            DecodeError::UnexpectedEnd => "input ended before announced payload",
            DecodeError::NonCanonicalLength => "length prefix not minimal",
            DecodeError::NonCanonicalByte => "single byte wrapped in string header",
            DecodeError::TrailingBytes => "trailing bytes after item",
            DecodeError::ExpectedBytes => "expected byte string, found list",
            DecodeError::ExpectedList => "expected list, found byte string",
            DecodeError::NonCanonicalInteger => "integer has leading zero",
            DecodeError::IntegerTooLarge => "integer exceeds 256 bits",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for DecodeError {}

/// Decodes a complete RLP item, rejecting trailing bytes.
pub fn decode(data: &[u8]) -> Result<Item, DecodeError> {
    let (item, rest) = decode_prefix(data)?;
    if !rest.is_empty() {
        return Err(DecodeError::TrailingBytes);
    }
    Ok(item)
}

/// Decodes one item from the front of `data`, returning it and the
/// remaining bytes.
pub fn decode_prefix(data: &[u8]) -> Result<(Item, &[u8]), DecodeError> {
    let (&first, rest) = data.split_first().ok_or(DecodeError::UnexpectedEnd)?;
    match first {
        0x00..=0x7f => Ok((Item::Bytes(vec![first]), rest)),
        0x80..=0xb7 => {
            let len = (first - 0x80) as usize;
            let (payload, rest) = take(rest, len)?;
            if len == 1 && payload[0] < 0x80 {
                return Err(DecodeError::NonCanonicalByte);
            }
            Ok((Item::Bytes(payload.to_vec()), rest))
        }
        0xb8..=0xbf => {
            let len_len = (first - 0xb7) as usize;
            let (len, rest) = read_long_length(rest, len_len)?;
            let (payload, rest) = take(rest, len)?;
            Ok((Item::Bytes(payload.to_vec()), rest))
        }
        0xc0..=0xf7 => {
            let len = (first - 0xc0) as usize;
            let (payload, rest) = take(rest, len)?;
            Ok((Item::List(decode_list_payload(payload)?), rest))
        }
        0xf8..=0xff => {
            let len_len = (first - 0xf7) as usize;
            let (len, rest) = read_long_length(rest, len_len)?;
            let (payload, rest) = take(rest, len)?;
            Ok((Item::List(decode_list_payload(payload)?), rest))
        }
    }
}

fn take(data: &[u8], n: usize) -> Result<(&[u8], &[u8]), DecodeError> {
    if data.len() < n {
        return Err(DecodeError::UnexpectedEnd);
    }
    Ok(data.split_at(n))
}

fn read_long_length(data: &[u8], len_len: usize) -> Result<(usize, &[u8]), DecodeError> {
    let (len_bytes, rest) = take(data, len_len)?;
    if len_bytes.first() == Some(&0) {
        return Err(DecodeError::NonCanonicalLength);
    }
    let mut len = 0usize;
    for &b in len_bytes {
        len = len
            .checked_mul(256)
            .ok_or(DecodeError::NonCanonicalLength)?
            + b as usize;
    }
    if len <= 55 {
        return Err(DecodeError::NonCanonicalLength);
    }
    Ok((len, rest))
}

fn decode_list_payload(mut payload: &[u8]) -> Result<Vec<Item>, DecodeError> {
    let mut items = Vec::new();
    while !payload.is_empty() {
        let (item, rest) = decode_prefix(payload)?;
        items.push(item);
        payload = rest;
    }
    Ok(items)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_examples() {
        // From the Ethereum wiki RLP test set.
        assert_eq!(
            encode(&Item::bytes(b"dog".to_vec())),
            vec![0x83, b'd', b'o', b'g']
        );
        assert_eq!(
            encode_list(&[Item::bytes(b"cat".to_vec()), Item::bytes(b"dog".to_vec())]),
            vec![0xc8, 0x83, b'c', b'a', b't', 0x83, b'd', b'o', b'g']
        );
        assert_eq!(encode(&Item::bytes(vec![])), vec![0x80]);
        assert_eq!(encode(&Item::uint(0)), vec![0x80]);
        assert_eq!(encode(&Item::uint(15)), vec![0x0f]);
        assert_eq!(encode(&Item::uint(1024)), vec![0x82, 0x04, 0x00]);
        assert_eq!(encode(&Item::List(vec![])), vec![0xc0]);
    }

    #[test]
    fn nested_list() {
        // [ [], [[]], [ [], [[]] ] ] — the "set theoretic" example.
        let item = Item::List(vec![
            Item::List(vec![]),
            Item::List(vec![Item::List(vec![])]),
            Item::List(vec![
                Item::List(vec![]),
                Item::List(vec![Item::List(vec![])]),
            ]),
        ]);
        let enc = encode(&item);
        assert_eq!(enc, vec![0xc7, 0xc0, 0xc1, 0xc0, 0xc3, 0xc0, 0xc1, 0xc0]);
        assert_eq!(decode(&enc).unwrap(), item);
    }

    #[test]
    fn long_string() {
        let s = vec![b'a'; 56];
        let enc = encode(&Item::bytes(s.clone()));
        assert_eq!(enc[0], 0xb8);
        assert_eq!(enc[1], 56);
        assert_eq!(decode(&enc).unwrap(), Item::Bytes(s));
    }

    #[test]
    fn long_list() {
        let items: Vec<Item> = (0..30).map(|i| Item::uint(i + 200)).collect();
        let enc = encode_list(&items);
        assert_eq!(decode(&enc).unwrap(), Item::List(items));
    }

    #[test]
    fn round_trip_u256() {
        for v in [U256::ZERO, U256::ONE, U256::from(0x80u64), U256::MAX] {
            let enc = encode(&Item::u256(v));
            assert_eq!(decode(&enc).unwrap().to_u256().unwrap(), v);
        }
    }

    #[test]
    fn rejects_noncanonical() {
        // 0x01 wrapped as a one-byte string must be rejected.
        assert_eq!(decode(&[0x81, 0x01]), Err(DecodeError::NonCanonicalByte));
        // Long form used for a short payload.
        assert_eq!(
            decode(&[0xb8, 0x01, 0xaa]),
            Err(DecodeError::NonCanonicalLength)
        );
        // Length bytes with leading zero.
        assert_eq!(
            decode(&[0xb9, 0x00, 0x38]),
            Err(DecodeError::NonCanonicalLength)
        );
        // Truncated payload.
        assert_eq!(decode(&[0x83, b'd', b'o']), Err(DecodeError::UnexpectedEnd));
        // Trailing garbage.
        assert_eq!(decode(&[0x01, 0x02]), Err(DecodeError::TrailingBytes));
        // Integer with leading zero.
        let it = decode(&[0x82, 0x00, 0x01]);
        assert_eq!(it.unwrap().to_u256(), Err(DecodeError::NonCanonicalInteger));
    }

    #[test]
    fn empty_input() {
        assert_eq!(decode(&[]), Err(DecodeError::UnexpectedEnd));
    }

    #[test]
    fn encoded_len_matches_encode() {
        let samples = [
            Item::bytes(vec![]),
            Item::bytes(vec![0x7f]),
            Item::bytes(vec![0x80]),
            Item::bytes(vec![b'x'; 55]),
            Item::bytes(vec![b'x'; 56]),
            Item::bytes(vec![b'x'; 300]),
            Item::uint(0),
            Item::u256(U256::MAX),
            Item::List(vec![]),
            Item::List(vec![Item::uint(7), Item::bytes(vec![1; 60])]),
            Item::List((0..40).map(|i| Item::uint(i * 1_000_003)).collect()),
        ];
        for item in &samples {
            let enc = encode(item);
            assert_eq!(enc.len(), encoded_len(item), "{item:?}");
            assert_eq!(decode(&enc).unwrap(), *item, "{item:?}");
        }
    }
}
