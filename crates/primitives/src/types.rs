//! Fixed-size byte newtypes: [`Address`] (20 bytes) and [`B256`] (32 bytes).

use crate::keccak::keccak256;
use crate::u256::U256;
use core::fmt;
use core::str::FromStr;

/// A 160-bit Ethereum account address.
///
/// ```
/// use mtpu_primitives::Address;
/// let a: Address = "0x00000000000000000000000000000000000000aa".parse()?;
/// assert_eq!(a.as_bytes()[19], 0xaa);
/// # Ok::<(), mtpu_primitives::ParseBytesError>(())
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Address([u8; 20]);

impl Address {
    /// The zero address (used for contract creation and burns).
    pub const ZERO: Address = Address([0; 20]);

    /// Wraps a raw 20-byte array.
    pub const fn new(bytes: [u8; 20]) -> Self {
        Address(bytes)
    }

    /// A deterministic test address with `n` in the low 8 bytes; handy for
    /// fixtures and workload generation.
    pub fn from_low_u64(n: u64) -> Self {
        let mut b = [0u8; 20];
        b[12..].copy_from_slice(&n.to_be_bytes());
        Address(b)
    }

    /// Borrows the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 20] {
        &self.0
    }

    /// Consumes into the raw bytes.
    pub const fn into_bytes(self) -> [u8; 20] {
        self.0
    }

    /// `true` if this is the zero address.
    pub fn is_zero(&self) -> bool {
        self.0 == [0; 20]
    }

    /// Widens to a 256-bit word (zero-extended), as the EVM `CALLER`,
    /// `ADDRESS` etc. push addresses on the stack.
    pub fn to_u256(self) -> U256 {
        U256::from_be_slice(&self.0)
    }

    /// Truncates a 256-bit word to the low 160 bits, as the EVM interprets
    /// address operands of `CALL`, `BALANCE` and friends.
    pub fn from_u256(v: U256) -> Self {
        let be = v.to_be_bytes();
        let mut b = [0u8; 20];
        b.copy_from_slice(&be[12..]);
        Address(b)
    }

    /// Standard `CREATE` address derivation: `keccak(rlp([sender, nonce]))[12..]`.
    pub fn create(sender: Address, nonce: u64) -> Address {
        let rlp = crate::rlp::encode_list(&[
            crate::rlp::Item::bytes(sender.as_bytes().to_vec()),
            crate::rlp::Item::uint(nonce),
        ]);
        let h = keccak256(&rlp);
        let mut b = [0u8; 20];
        b.copy_from_slice(&h[12..]);
        Address(b)
    }

    /// `CREATE2` address derivation:
    /// `keccak(0xff ++ sender ++ salt ++ keccak(init_code))[12..]`.
    pub fn create2(sender: Address, salt: B256, init_code: &[u8]) -> Address {
        let code_hash = keccak256(init_code);
        let mut buf = Vec::with_capacity(1 + 20 + 32 + 32);
        buf.push(0xff);
        buf.extend_from_slice(sender.as_bytes());
        buf.extend_from_slice(salt.as_bytes());
        buf.extend_from_slice(&code_hash);
        let h = keccak256(&buf);
        let mut b = [0u8; 20];
        b.copy_from_slice(&h[12..]);
        Address(b)
    }
}

impl From<[u8; 20]> for Address {
    fn from(b: [u8; 20]) -> Self {
        Address(b)
    }
}

impl AsRef<[u8]> for Address {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Address({})", self)
    }
}

impl fmt::Display for Address {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", crate::hex::encode(&self.0))
    }
}

/// Error returned when parsing an [`Address`] or [`B256`] from hex fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseBytesError;

impl fmt::Display for ParseBytesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid fixed-length hex string")
    }
}

impl std::error::Error for ParseBytesError {}

impl FromStr for Address {
    type Err = ParseBytesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        let bytes = crate::hex::decode(s).map_err(|_| ParseBytesError)?;
        if bytes.len() != 20 {
            return Err(ParseBytesError);
        }
        let mut b = [0u8; 20];
        b.copy_from_slice(&bytes);
        Ok(Address(b))
    }
}

/// A 256-bit hash or opaque word (block hashes, code hashes, storage roots).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct B256([u8; 32]);

impl B256 {
    /// The all-zero hash.
    pub const ZERO: B256 = B256([0; 32]);

    /// Wraps a raw 32-byte array.
    pub const fn new(bytes: [u8; 32]) -> Self {
        B256(bytes)
    }

    /// Borrows the raw bytes.
    pub const fn as_bytes(&self) -> &[u8; 32] {
        &self.0
    }

    /// Consumes into the raw bytes.
    pub const fn into_bytes(self) -> [u8; 32] {
        self.0
    }

    /// Keccak-256 of `data`, as a [`B256`].
    pub fn keccak(data: &[u8]) -> B256 {
        B256(keccak256(data))
    }

    /// Converts to a 256-bit integer (big-endian interpretation).
    pub fn to_u256(self) -> U256 {
        U256::from_be_bytes(self.0)
    }

    /// Converts from a 256-bit integer (big-endian representation).
    pub fn from_u256(v: U256) -> Self {
        B256(v.to_be_bytes())
    }
}

impl From<[u8; 32]> for B256 {
    fn from(b: [u8; 32]) -> Self {
        B256(b)
    }
}

impl AsRef<[u8]> for B256 {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl fmt::Debug for B256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "B256({})", self)
    }
}

impl fmt::Display for B256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{}", crate::hex::encode(&self.0))
    }
}

impl FromStr for B256 {
    type Err = ParseBytesError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        let bytes = crate::hex::decode(s).map_err(|_| ParseBytesError)?;
        if bytes.len() != 32 {
            return Err(ParseBytesError);
        }
        let mut b = [0u8; 32];
        b.copy_from_slice(&bytes);
        Ok(B256(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn address_round_trips() {
        let a = Address::from_low_u64(0xdead);
        let s = a.to_string();
        assert_eq!(s.parse::<Address>().unwrap(), a);
        assert_eq!(Address::from_u256(a.to_u256()), a);
    }

    #[test]
    fn address_from_u256_truncates() {
        let v = U256::MAX;
        let a = Address::from_u256(v);
        assert_eq!(a.as_bytes(), &[0xff; 20]);
    }

    #[test]
    fn create_address_known_vector() {
        // keccak(rlp([0x00..6, nonce 0])) for the zero-ish sender is stable;
        // check self-consistency and nonce sensitivity.
        let sender = Address::from_low_u64(6);
        let a0 = Address::create(sender, 0);
        let a1 = Address::create(sender, 1);
        assert_ne!(a0, a1);
        assert_ne!(a0, Address::ZERO);
    }

    #[test]
    fn create2_is_deterministic() {
        let sender = Address::from_low_u64(1);
        let salt = B256::from_u256(U256::from(42u64));
        let a = Address::create2(sender, salt, &[0x60, 0x00]);
        let b = Address::create2(sender, salt, &[0x60, 0x00]);
        assert_eq!(a, b);
        assert_ne!(a, Address::create2(sender, salt, &[0x60, 0x01]));
    }

    #[test]
    fn b256_round_trips() {
        let h = B256::keccak(b"data");
        assert_eq!(h.to_string().parse::<B256>().unwrap(), h);
        assert_eq!(B256::from_u256(h.to_u256()), h);
    }

    #[test]
    fn parse_rejects_bad_lengths() {
        assert!("0x1234".parse::<Address>().is_err());
        assert!("0x1234".parse::<B256>().is_err());
        assert!("0xzz000000000000000000000000000000000000zz"
            .parse::<Address>()
            .is_err());
    }
}
