//! A 256-bit unsigned integer with the exact arithmetic semantics the EVM
//! requires (wrapping ring arithmetic, zero-returning division, two's
//! complement signed views).
//!
//! The representation is four little-endian `u64` limbs. All EVM-visible
//! operations are implemented from scratch; the only helpers borrowed from
//! the standard library are `u64`/`u128` primitives.

use core::cmp::Ordering;
use core::fmt;
use core::iter::{Product, Sum};
use core::ops::{
    Add, AddAssign, BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Div, Mul,
    MulAssign, Not, Rem, Shl, Shr, Sub, SubAssign,
};
use core::str::FromStr;

/// Number of 64-bit limbs in a [`U256`].
pub const LIMBS: usize = 4;

/// 256-bit unsigned integer (the EVM machine word).
///
/// Arithmetic via the `std::ops` traits is **wrapping**, matching EVM
/// semantics, except [`Div`] and [`Rem`] which panic on a zero divisor like
/// the built-in integers do; use [`U256::evm_div`] / [`U256::evm_rem`] for
/// the EVM's zero-returning variants.
///
/// ```
/// use mtpu_primitives::U256;
/// let a = U256::MAX;
/// assert_eq!(a + U256::ONE, U256::ZERO); // wrapping
/// assert_eq!(U256::from(7u64).evm_div(U256::ZERO), U256::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct U256(pub(crate) [u64; LIMBS]);

impl U256 {
    /// The additive identity.
    pub const ZERO: U256 = U256([0; LIMBS]);
    /// The multiplicative identity.
    pub const ONE: U256 = U256([1, 0, 0, 0]);
    /// The largest representable value, `2^256 - 1`.
    pub const MAX: U256 = U256([u64::MAX; LIMBS]);
    /// The most significant bit, `2^255` (sign bit of the signed view).
    pub const SIGN_BIT: U256 = U256([0, 0, 0, 1 << 63]);

    /// Creates a value from raw little-endian limbs.
    #[inline]
    pub const fn from_limbs(limbs: [u64; LIMBS]) -> Self {
        U256(limbs)
    }

    /// Returns the raw little-endian limbs.
    #[inline]
    pub const fn into_limbs(self) -> [u64; LIMBS] {
        self.0
    }

    /// Borrows the raw little-endian limbs.
    #[inline]
    pub const fn as_limbs(&self) -> &[u64; LIMBS] {
        &self.0
    }

    /// `true` if the value is zero.
    #[inline]
    pub const fn is_zero(&self) -> bool {
        self.0[0] == 0 && self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0
    }

    /// Interprets the value as a boolean (EVM truthiness).
    #[inline]
    pub const fn as_bool(&self) -> bool {
        !self.is_zero()
    }

    /// The low 64 bits, discarding the rest.
    #[inline]
    pub const fn low_u64(&self) -> u64 {
        self.0[0]
    }

    /// The low 128 bits, discarding the rest.
    #[inline]
    pub const fn low_u128(&self) -> u128 {
        (self.0[0] as u128) | ((self.0[1] as u128) << 64)
    }

    /// Converts to `u64` if the value fits.
    #[inline]
    pub fn try_to_u64(&self) -> Option<u64> {
        if self.0[1] == 0 && self.0[2] == 0 && self.0[3] == 0 {
            Some(self.0[0])
        } else {
            None
        }
    }

    /// Converts to `usize`, saturating at `usize::MAX` when out of range.
    ///
    /// Handy for memory offsets where the EVM would run out of gas long
    /// before a saturated value is reachable.
    #[inline]
    pub fn saturating_to_usize(&self) -> usize {
        match self.try_to_u64() {
            Some(v) if v <= usize::MAX as u64 => v as usize,
            _ => usize::MAX,
        }
    }

    /// Number of significant bits (`0` for zero).
    pub fn bits(&self) -> u32 {
        for i in (0..LIMBS).rev() {
            if self.0[i] != 0 {
                return (i as u32) * 64 + (64 - self.0[i].leading_zeros());
            }
        }
        0
    }

    /// Number of leading zero bits.
    #[inline]
    pub fn leading_zeros(&self) -> u32 {
        256 - self.bits()
    }

    /// Value of bit `i` (little-endian bit order); `false` when `i >= 256`.
    #[inline]
    pub fn bit(&self, i: usize) -> bool {
        if i >= 256 {
            return false;
        }
        (self.0[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of one bits.
    #[inline]
    pub fn count_ones(&self) -> u32 {
        self.0.iter().map(|l| l.count_ones()).sum()
    }

    /// Parses a big-endian byte slice of at most 32 bytes.
    ///
    /// Shorter slices are zero-extended on the left, exactly like EVM
    /// calldata/stack conversions.
    ///
    /// # Panics
    ///
    /// Panics if `bytes.len() > 32`.
    pub fn from_be_slice(bytes: &[u8]) -> Self {
        assert!(bytes.len() <= 32, "U256::from_be_slice: more than 32 bytes");
        let mut buf = [0u8; 32];
        buf[32 - bytes.len()..].copy_from_slice(bytes);
        Self::from_be_bytes(buf)
    }

    /// Converts from a 32-byte big-endian array.
    pub fn from_be_bytes(bytes: [u8; 32]) -> Self {
        let mut limbs = [0u64; LIMBS];
        for (i, limb) in limbs.iter_mut().enumerate() {
            let start = 32 - (i + 1) * 8;
            let mut chunk = [0u8; 8];
            chunk.copy_from_slice(&bytes[start..start + 8]);
            *limb = u64::from_be_bytes(chunk);
        }
        U256(limbs)
    }

    /// Converts to a 32-byte big-endian array.
    pub fn to_be_bytes(self) -> [u8; 32] {
        let mut out = [0u8; 32];
        for i in 0..LIMBS {
            let start = 32 - (i + 1) * 8;
            out[start..start + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        out
    }

    /// Number of bytes in the minimal big-endian representation
    /// (0 for zero) — the length [`U256::to_be_bytes_trimmed`] would
    /// allocate, without allocating.
    pub fn byte_len(&self) -> usize {
        (self.bits() as usize).div_ceil(8)
    }

    /// Writes the full 32-byte big-endian form into `buf` and returns
    /// the offset of the first significant byte, so `&buf[offset..]` is
    /// the minimal (RLP-canonical) representation with no allocation.
    pub fn write_be_into(self, buf: &mut [u8; 32]) -> usize {
        for i in 0..LIMBS {
            let start = 32 - (i + 1) * 8;
            buf[start..start + 8].copy_from_slice(&self.0[i].to_be_bytes());
        }
        32 - self.byte_len()
    }

    /// Minimal big-endian byte representation (empty for zero), as used by
    /// RLP encoding.
    pub fn to_be_bytes_trimmed(self) -> Vec<u8> {
        let mut full = [0u8; 32];
        let first = self.write_be_into(&mut full);
        full[first..].to_vec()
    }

    /// Wrapping addition, with carry-out flag.
    #[allow(clippy::needless_range_loop)] // limb i of both operands
    pub fn overflowing_add(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; LIMBS];
        let mut carry = false;
        for i in 0..LIMBS {
            let (s1, c1) = self.0[i].overflowing_add(rhs.0[i]);
            let (s2, c2) = s1.overflowing_add(carry as u64);
            out[i] = s2;
            carry = c1 | c2;
        }
        (U256(out), carry)
    }

    /// Wrapping subtraction, with borrow-out flag.
    #[allow(clippy::needless_range_loop)] // limb i of both operands
    pub fn overflowing_sub(self, rhs: U256) -> (U256, bool) {
        let mut out = [0u64; LIMBS];
        let mut borrow = false;
        for i in 0..LIMBS {
            let (d1, b1) = self.0[i].overflowing_sub(rhs.0[i]);
            let (d2, b2) = d1.overflowing_sub(borrow as u64);
            out[i] = d2;
            borrow = b1 | b2;
        }
        (U256(out), borrow)
    }

    /// Wrapping multiplication, with overflow flag.
    pub fn overflowing_mul(self, rhs: U256) -> (U256, bool) {
        let wide = self.mul_wide(rhs);
        let overflow = wide[4] | wide[5] | wide[6] | wide[7] != 0;
        (U256([wide[0], wide[1], wide[2], wide[3]]), overflow)
    }

    /// Checked addition: `None` on overflow.
    pub fn checked_add(self, rhs: U256) -> Option<U256> {
        match self.overflowing_add(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked subtraction: `None` on underflow.
    pub fn checked_sub(self, rhs: U256) -> Option<U256> {
        match self.overflowing_sub(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Checked multiplication: `None` on overflow.
    pub fn checked_mul(self, rhs: U256) -> Option<U256> {
        match self.overflowing_mul(rhs) {
            (v, false) => Some(v),
            _ => None,
        }
    }

    /// Saturating addition.
    pub fn saturating_add(self, rhs: U256) -> U256 {
        self.checked_add(rhs).unwrap_or(U256::MAX)
    }

    /// Saturating subtraction (clamps at zero).
    pub fn saturating_sub(self, rhs: U256) -> U256 {
        self.checked_sub(rhs).unwrap_or(U256::ZERO)
    }

    /// Wrapping addition (same as `+`).
    #[inline]
    pub fn wrapping_add(self, rhs: U256) -> U256 {
        self.overflowing_add(rhs).0
    }

    /// Wrapping subtraction (same as `-`).
    #[inline]
    pub fn wrapping_sub(self, rhs: U256) -> U256 {
        self.overflowing_sub(rhs).0
    }

    /// Wrapping multiplication (same as `*`).
    #[inline]
    pub fn wrapping_mul(self, rhs: U256) -> U256 {
        self.overflowing_mul(rhs).0
    }

    /// Full 512-bit product as eight little-endian limbs.
    pub fn mul_wide(self, rhs: U256) -> [u64; 2 * LIMBS] {
        let mut out = [0u64; 2 * LIMBS];
        for i in 0..LIMBS {
            let mut carry: u128 = 0;
            for j in 0..LIMBS {
                let cur = out[i + j] as u128 + (self.0[i] as u128) * (rhs.0[j] as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            out[i + LIMBS] = carry as u64;
        }
        out
    }

    /// Quotient and remainder.
    ///
    /// Returns `None` when `divisor` is zero.
    pub fn div_rem(self, divisor: U256) -> Option<(U256, U256)> {
        if divisor.is_zero() {
            return None;
        }
        if self < divisor {
            return Some((U256::ZERO, self));
        }
        // Fast path: both fit in u128.
        if self.0[2] | self.0[3] | divisor.0[2] | divisor.0[3] == 0 {
            let a = self.low_u128();
            let b = divisor.low_u128();
            return Some((U256::from(a / b), U256::from(a % b)));
        }
        let (q, r) = div_rem_knuth(&self.0, &divisor.0);
        Some((U256(q), U256(r)))
    }

    /// EVM `DIV`: division where `x / 0 == 0`.
    #[inline]
    pub fn evm_div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).map(|(q, _)| q).unwrap_or(U256::ZERO)
    }

    /// EVM `MOD`: remainder where `x % 0 == 0`.
    #[inline]
    pub fn evm_rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).map(|(_, r)| r).unwrap_or(U256::ZERO)
    }

    /// `true` if the signed (two's complement) view is negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        self.0[3] >> 63 == 1
    }

    /// Two's complement negation.
    #[inline]
    pub fn twos_neg(self) -> U256 {
        (!self).wrapping_add(U256::ONE)
    }

    /// Absolute value of the signed view (as an unsigned magnitude).
    #[inline]
    pub fn signed_abs(self) -> U256 {
        if self.is_negative() {
            self.twos_neg()
        } else {
            self
        }
    }

    /// EVM `SDIV`: signed division, truncating toward zero, `x / 0 == 0`,
    /// and `MIN / -1 == MIN` (wraps).
    pub fn evm_sdiv(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        if self == U256::SIGN_BIT && rhs == U256::MAX {
            return U256::SIGN_BIT;
        }
        let q = self.signed_abs().evm_div(rhs.signed_abs());
        if self.is_negative() != rhs.is_negative() {
            q.twos_neg()
        } else {
            q
        }
    }

    /// EVM `SMOD`: signed remainder taking the sign of the dividend,
    /// `x % 0 == 0`.
    pub fn evm_smod(self, rhs: U256) -> U256 {
        if rhs.is_zero() {
            return U256::ZERO;
        }
        let r = self.signed_abs().evm_rem(rhs.signed_abs());
        if self.is_negative() {
            r.twos_neg()
        } else {
            r
        }
    }

    /// EVM `ADDMOD`: `(self + rhs) % modulus` computed over 512 bits,
    /// `x % 0 == 0`.
    pub fn addmod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let (sum, carry) = self.overflowing_add(rhs);
        if !carry {
            return sum.evm_rem(modulus);
        }
        // 257-bit sum: reduce [sum, 1] mod modulus via wide remainder.
        let wide = [sum.0[0], sum.0[1], sum.0[2], sum.0[3], 1, 0, 0, 0];
        U256(rem_wide(&wide, &modulus.0))
    }

    /// EVM `MULMOD`: `(self * rhs) % modulus` computed over 512 bits,
    /// `x % 0 == 0`.
    pub fn mulmod(self, rhs: U256, modulus: U256) -> U256 {
        if modulus.is_zero() {
            return U256::ZERO;
        }
        let wide = self.mul_wide(rhs);
        U256(rem_wide(&wide, &modulus.0))
    }

    /// EVM `EXP`: wrapping exponentiation by squaring.
    pub fn wrapping_pow(self, mut exp: U256) -> U256 {
        let mut base = self;
        let mut acc = U256::ONE;
        while !exp.is_zero() {
            if exp.bit(0) {
                acc = acc.wrapping_mul(base);
            }
            base = base.wrapping_mul(base);
            exp = exp >> 1;
        }
        acc
    }

    /// EVM `SIGNEXTEND`: sign-extends the low `byte_index + 1` bytes.
    ///
    /// When `byte_index >= 31` the value is returned unchanged.
    pub fn signextend(self, byte_index: U256) -> U256 {
        let Some(i) = byte_index.try_to_u64() else {
            return self;
        };
        if i >= 31 {
            return self;
        }
        let bit = (i as usize) * 8 + 7;
        let mask = (U256::ONE << (bit + 1)).wrapping_sub(U256::ONE);
        if self.bit(bit) {
            self | !mask
        } else {
            self & mask
        }
    }

    /// EVM `BYTE`: byte `i` of the big-endian representation (0 = most
    /// significant); zero when `i >= 32`.
    pub fn byte_be(self, i: U256) -> U256 {
        match i.try_to_u64() {
            Some(n) if n < 32 => U256::from(self.to_be_bytes()[n as usize] as u64),
            _ => U256::ZERO,
        }
    }

    /// EVM `SHL` with a 256-bit shift amount (result is zero for shifts
    /// ≥ 256).
    pub fn evm_shl(self, shift: U256) -> U256 {
        match shift.try_to_u64() {
            Some(s) if s < 256 => self << s as usize,
            _ => U256::ZERO,
        }
    }

    /// EVM `SHR` (logical) with a 256-bit shift amount.
    pub fn evm_shr(self, shift: U256) -> U256 {
        match shift.try_to_u64() {
            Some(s) if s < 256 => self >> s as usize,
            _ => U256::ZERO,
        }
    }

    /// EVM `SAR` (arithmetic shift right) with a 256-bit shift amount.
    pub fn evm_sar(self, shift: U256) -> U256 {
        let neg = self.is_negative();
        match shift.try_to_u64() {
            Some(s) if s < 256 => {
                let shifted = self >> s as usize;
                if neg && s > 0 {
                    shifted | (U256::MAX << (256 - s as usize))
                } else {
                    shifted
                }
            }
            _ => {
                if neg {
                    U256::MAX
                } else {
                    U256::ZERO
                }
            }
        }
    }

    /// Signed (two's complement) comparison.
    pub fn signed_cmp(&self, other: &U256) -> Ordering {
        match (self.is_negative(), other.is_negative()) {
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            _ => self.cmp(other),
        }
    }

    /// Parses a hexadecimal string with optional `0x` prefix.
    pub fn from_str_hex(s: &str) -> Result<Self, ParseU256Error> {
        let s = s.strip_prefix("0x").unwrap_or(s);
        if s.is_empty() || s.len() > 64 {
            return Err(ParseU256Error);
        }
        let mut v = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(16).ok_or(ParseU256Error)? as u64;
            v = (v << 4) | U256::from(d);
        }
        Ok(v)
    }

    /// Parses a decimal string.
    pub fn from_str_dec(s: &str) -> Result<Self, ParseU256Error> {
        if s.is_empty() || s.len() > 78 {
            return Err(ParseU256Error);
        }
        let ten = U256::from(10u64);
        let mut v = U256::ZERO;
        for c in s.chars() {
            let d = c.to_digit(10).ok_or(ParseU256Error)? as u64;
            let (m, o1) = v.overflowing_mul(ten);
            let (a, o2) = m.overflowing_add(U256::from(d));
            if o1 || o2 {
                return Err(ParseU256Error);
            }
            v = a;
        }
        Ok(v)
    }
}

/// Error returned when parsing a [`U256`] from a string fails.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseU256Error;

impl fmt::Display for ParseU256Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid 256-bit integer literal")
    }
}

impl std::error::Error for ParseU256Error {}

impl FromStr for U256 {
    type Err = ParseU256Error;

    /// Accepts `0x`-prefixed hex or plain decimal.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if let Some(hex) = s.strip_prefix("0x") {
            U256::from_str_hex(hex)
        } else {
            U256::from_str_dec(s)
        }
    }
}

// ---------------------------------------------------------------------------
// Long division helpers (Knuth algorithm D on little-endian limb slices).
// ---------------------------------------------------------------------------

fn limbs_bits(l: &[u64]) -> u32 {
    for i in (0..l.len()).rev() {
        if l[i] != 0 {
            return (i as u32) * 64 + 64 - l[i].leading_zeros();
        }
    }
    0
}

fn limbs_cmp(a: &[u64], b: &[u64]) -> Ordering {
    debug_assert_eq!(a.len(), b.len());
    for i in (0..a.len()).rev() {
        match a[i].cmp(&b[i]) {
            Ordering::Equal => continue,
            o => return o,
        }
    }
    Ordering::Equal
}

/// Shift-left an arbitrary-width little-endian limb vector by `s < 64` bits.
fn limbs_shl_small(l: &[u64], s: u32, out: &mut [u64]) {
    debug_assert!(s < 64);
    debug_assert!(out.len() >= l.len());
    let mut carry = 0u64;
    for i in 0..l.len() {
        out[i] = (l[i] << s) | carry;
        carry = if s == 0 { 0 } else { l[i] >> (64 - s) };
    }
    if out.len() > l.len() {
        out[l.len()] = carry;
        for o in out[l.len() + 1..].iter_mut() {
            *o = 0;
        }
    } else {
        debug_assert_eq!(carry, 0);
    }
}

/// Shift-right by `s < 64` bits.
fn limbs_shr_small(l: &mut [u64], s: u32) {
    debug_assert!(s < 64);
    if s == 0 {
        return;
    }
    let mut carry = 0u64;
    for i in (0..l.len()).rev() {
        let new_carry = l[i] << (64 - s);
        l[i] = (l[i] >> s) | carry;
        carry = new_carry;
    }
}

/// Core of Knuth algorithm D: divides `num` (n+m limbs, normalized) by
/// `den` (n limbs, top limb has high bit set). `num` must carry one extra
/// high limb of working space. On return `num[..n]` holds the remainder and
/// `quot` the quotient.
fn div_knuth_normalized(num: &mut [u64], den: &[u64], quot: &mut [u64]) {
    let n = den.len();
    debug_assert!(n >= 2, "single-limb divisors take the short path");
    debug_assert!(den[n - 1] >> 63 == 1, "divisor must be normalized");
    let m = num.len() - n - 1;
    debug_assert!(quot.len() > m);

    for j in (0..=m).rev() {
        // Estimate q_hat = (num[j+n]*B + num[j+n-1]) / den[n-1].
        let top = ((num[j + n] as u128) << 64) | num[j + n - 1] as u128;
        let mut q_hat = top / den[n - 1] as u128;
        let mut r_hat = top % den[n - 1] as u128;
        while q_hat >> 64 != 0
            || q_hat * den[n - 2] as u128 > ((r_hat << 64) | num[j + n - 2] as u128)
        {
            q_hat -= 1;
            r_hat += den[n - 1] as u128;
            if r_hat >> 64 != 0 {
                break;
            }
        }
        // Multiply-and-subtract q_hat * den from num[j..j+n+1].
        let mut borrow: i128 = 0;
        let mut carry: u128 = 0;
        for i in 0..n {
            let p = q_hat * den[i] as u128 + carry;
            carry = p >> 64;
            let sub = (num[j + i] as i128) - (p as u64 as i128) + borrow;
            num[j + i] = sub as u64;
            borrow = sub >> 64;
        }
        let sub = (num[j + n] as i128) - (carry as i128) + borrow;
        num[j + n] = sub as u64;
        borrow = sub >> 64;

        if borrow < 0 {
            // q_hat was one too large: add the divisor back.
            q_hat -= 1;
            let mut carry = 0u128;
            for i in 0..n {
                let s = num[j + i] as u128 + den[i] as u128 + carry;
                num[j + i] = s as u64;
                carry = s >> 64;
            }
            num[j + n] = num[j + n].wrapping_add(carry as u64);
        }
        quot[j] = q_hat as u64;
    }
}

/// Divides a 256-bit value by a 256-bit value, both as limb arrays.
/// The divisor must be nonzero and not larger than the dividend.
fn div_rem_knuth(a: &[u64; LIMBS], b: &[u64; LIMBS]) -> ([u64; LIMBS], [u64; LIMBS]) {
    let bbits = limbs_bits(b);
    debug_assert!(bbits != 0);
    let n = bbits.div_ceil(64) as usize;
    if n == 1 {
        // Single-limb divisor: schoolbook.
        let d = b[0];
        let mut q = [0u64; LIMBS];
        let mut rem: u128 = 0;
        for i in (0..LIMBS).rev() {
            let cur = (rem << 64) | a[i] as u128;
            q[i] = (cur / d as u128) as u64;
            rem = cur % d as u128;
        }
        return (q, [rem as u64, 0, 0, 0]);
    }
    let shift = b[n - 1].leading_zeros();
    let mut den = vec![0u64; n];
    limbs_shl_small(&b[..n], shift, &mut den);
    let mut num = vec![0u64; LIMBS + 1];
    limbs_shl_small(a, shift, &mut num);
    let mut quot = vec![0u64; LIMBS - n + 1];
    div_knuth_normalized(&mut num, &den, &mut quot);
    limbs_shr_small(&mut num[..n], shift);
    let mut q = [0u64; LIMBS];
    q[..quot.len().min(LIMBS)].copy_from_slice(&quot[..quot.len().min(LIMBS)]);
    let mut r = [0u64; LIMBS];
    r[..n].copy_from_slice(&num[..n]);
    (q, r)
}

/// Remainder of a 512-bit value divided by a nonzero 256-bit modulus.
fn rem_wide(a: &[u64; 2 * LIMBS], m: &[u64; LIMBS]) -> [u64; LIMBS] {
    let abits = limbs_bits(a);
    let mbits = limbs_bits(m);
    debug_assert!(mbits != 0);
    if abits < mbits {
        let mut r = [0u64; LIMBS];
        r.copy_from_slice(&a[..LIMBS]);
        return r;
    }
    let n = mbits.div_ceil(64) as usize;
    if n == 1 {
        let d = m[0];
        let mut rem: u128 = 0;
        for i in (0..2 * LIMBS).rev() {
            let cur = (rem << 64) | a[i] as u128;
            rem = cur % d as u128;
        }
        return [rem as u64, 0, 0, 0];
    }
    let a_len = abits.div_ceil(64) as usize;
    let shift = m[n - 1].leading_zeros();
    let mut den = vec![0u64; n];
    limbs_shl_small(&m[..n], shift, &mut den);
    let mut num = vec![0u64; a_len + 1];
    limbs_shl_small(&a[..a_len], shift, &mut num);
    let mut quot = vec![0u64; a_len - n + 1];
    div_knuth_normalized(&mut num, &den, &mut quot);
    limbs_shr_small(&mut num[..n], shift);
    let mut r = [0u64; LIMBS];
    r[..n].copy_from_slice(&num[..n]);
    r
}

// ---------------------------------------------------------------------------
// Operator impls
// ---------------------------------------------------------------------------

impl Add for U256 {
    type Output = U256;
    #[inline]
    fn add(self, rhs: U256) -> U256 {
        self.wrapping_add(rhs)
    }
}

impl Sub for U256 {
    type Output = U256;
    #[inline]
    fn sub(self, rhs: U256) -> U256 {
        self.wrapping_sub(rhs)
    }
}

impl Mul for U256 {
    type Output = U256;
    #[inline]
    fn mul(self, rhs: U256) -> U256 {
        self.wrapping_mul(rhs)
    }
}

impl Div for U256 {
    type Output = U256;
    /// # Panics
    ///
    /// Panics when `rhs` is zero; use [`U256::evm_div`] for EVM semantics.
    fn div(self, rhs: U256) -> U256 {
        self.div_rem(rhs).expect("division by zero").0
    }
}

impl Rem for U256 {
    type Output = U256;
    /// # Panics
    ///
    /// Panics when `rhs` is zero; use [`U256::evm_rem`] for EVM semantics.
    fn rem(self, rhs: U256) -> U256 {
        self.div_rem(rhs).expect("remainder by zero").1
    }
}

impl AddAssign for U256 {
    fn add_assign(&mut self, rhs: U256) {
        *self = *self + rhs;
    }
}

impl SubAssign for U256 {
    fn sub_assign(&mut self, rhs: U256) {
        *self = *self - rhs;
    }
}

impl MulAssign for U256 {
    fn mul_assign(&mut self, rhs: U256) {
        *self = *self * rhs;
    }
}

impl Not for U256 {
    type Output = U256;
    fn not(self) -> U256 {
        U256([!self.0[0], !self.0[1], !self.0[2], !self.0[3]])
    }
}

impl BitAnd for U256 {
    type Output = U256;
    fn bitand(self, rhs: U256) -> U256 {
        U256([
            self.0[0] & rhs.0[0],
            self.0[1] & rhs.0[1],
            self.0[2] & rhs.0[2],
            self.0[3] & rhs.0[3],
        ])
    }
}

impl BitOr for U256 {
    type Output = U256;
    fn bitor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] | rhs.0[0],
            self.0[1] | rhs.0[1],
            self.0[2] | rhs.0[2],
            self.0[3] | rhs.0[3],
        ])
    }
}

impl BitXor for U256 {
    type Output = U256;
    fn bitxor(self, rhs: U256) -> U256 {
        U256([
            self.0[0] ^ rhs.0[0],
            self.0[1] ^ rhs.0[1],
            self.0[2] ^ rhs.0[2],
            self.0[3] ^ rhs.0[3],
        ])
    }
}

impl BitAndAssign for U256 {
    fn bitand_assign(&mut self, rhs: U256) {
        *self = *self & rhs;
    }
}

impl BitOrAssign for U256 {
    fn bitor_assign(&mut self, rhs: U256) {
        *self = *self | rhs;
    }
}

impl BitXorAssign for U256 {
    fn bitxor_assign(&mut self, rhs: U256) {
        *self = *self ^ rhs;
    }
}

impl Shl<usize> for U256 {
    type Output = U256;
    #[allow(clippy::needless_range_loop)] // shifted limb indexing
    fn shl(self, s: usize) -> U256 {
        if s >= 256 {
            return U256::ZERO;
        }
        let limb_shift = s / 64;
        let bit_shift = (s % 64) as u32;
        let mut out = [0u64; LIMBS];
        for i in (0..LIMBS).rev() {
            if i >= limb_shift {
                out[i] = self.0[i - limb_shift] << bit_shift;
                if bit_shift > 0 && i > limb_shift {
                    out[i] |= self.0[i - limb_shift - 1] >> (64 - bit_shift);
                }
            }
        }
        U256(out)
    }
}

impl Shr<usize> for U256 {
    type Output = U256;
    #[allow(clippy::needless_range_loop)] // shifted limb indexing
    fn shr(self, s: usize) -> U256 {
        if s >= 256 {
            return U256::ZERO;
        }
        let limb_shift = s / 64;
        let bit_shift = (s % 64) as u32;
        let mut out = [0u64; LIMBS];
        for i in 0..LIMBS {
            if i + limb_shift < LIMBS {
                out[i] = self.0[i + limb_shift] >> bit_shift;
                if bit_shift > 0 && i + limb_shift + 1 < LIMBS {
                    out[i] |= self.0[i + limb_shift + 1] << (64 - bit_shift);
                }
            }
        }
        U256(out)
    }
}

impl Ord for U256 {
    fn cmp(&self, other: &Self) -> Ordering {
        limbs_cmp(&self.0, &other.0)
    }
}

impl PartialOrd for U256 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Sum for U256 {
    fn sum<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ZERO, |a, b| a + b)
    }
}

impl Product for U256 {
    fn product<I: Iterator<Item = U256>>(iter: I) -> U256 {
        iter.fold(U256::ONE, |a, b| a * b)
    }
}

impl From<bool> for U256 {
    fn from(b: bool) -> U256 {
        if b {
            U256::ONE
        } else {
            U256::ZERO
        }
    }
}

macro_rules! impl_from_uint {
    ($($t:ty),*) => {$(
        impl From<$t> for U256 {
            fn from(v: $t) -> U256 {
                U256([v as u64, 0, 0, 0])
            }
        }
    )*};
}
impl_from_uint!(u8, u16, u32, u64, usize);

impl From<u128> for U256 {
    fn from(v: u128) -> U256 {
        U256([v as u64, (v >> 64) as u64, 0, 0])
    }
}

impl fmt::Debug for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "U256(0x{:x})", self)
    }
}

impl fmt::Display for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decimal rendering via repeated division by 10^19.
        if self.is_zero() {
            return f.write_str("0");
        }
        let chunk = U256::from(10_000_000_000_000_000_000u64);
        let mut v = *self;
        let mut parts: Vec<u64> = Vec::new();
        while !v.is_zero() {
            let (q, r) = v.div_rem(chunk).expect("nonzero divisor");
            parts.push(r.low_u64());
            v = q;
        }
        let mut s = parts.pop().expect("nonzero value has digits").to_string();
        while let Some(p) = parts.pop() {
            s.push_str(&format!("{:019}", p));
        }
        f.pad_integral(true, "", &s)
    }
}

impl fmt::LowerHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        let mut significant = false;
        for i in (0..LIMBS).rev() {
            if significant {
                s.push_str(&format!("{:016x}", self.0[i]));
            } else if self.0[i] != 0 || i == 0 {
                s.push_str(&format!("{:x}", self.0[i]));
                significant = true;
            }
        }
        f.pad_integral(true, "0x", &s)
    }
}

impl fmt::UpperHex for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let lower = format!("{:x}", self);
        f.pad_integral(true, "0x", &lower.to_uppercase())
    }
}

impl fmt::Binary for U256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        let mut significant = false;
        for i in (0..LIMBS).rev() {
            if significant {
                s.push_str(&format!("{:064b}", self.0[i]));
            } else if self.0[i] != 0 || i == 0 {
                s.push_str(&format!("{:b}", self.0[i]));
                significant = true;
            }
        }
        f.pad_integral(true, "0b", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: u64) -> U256 {
        U256::from(v)
    }

    #[test]
    fn add_wraps() {
        assert_eq!(U256::MAX + U256::ONE, U256::ZERO);
        assert_eq!(u(2) + u(3), u(5));
        let (s, c) = U256::MAX.overflowing_add(U256::MAX);
        assert!(c);
        assert_eq!(s, U256::MAX - U256::ONE);
    }

    #[test]
    fn sub_wraps() {
        assert_eq!(U256::ZERO - U256::ONE, U256::MAX);
        assert_eq!(u(5) - u(3), u(2));
    }

    #[test]
    fn mul_basic_and_wide() {
        assert_eq!(u(7) * u(6), u(42));
        let a = U256::from(u128::MAX);
        let sq = a.mul_wide(a);
        // (2^128 - 1)^2 = 2^256 - 2^129 + 1
        let low = U256([sq[0], sq[1], sq[2], sq[3]]);
        let expected_low = U256::ZERO - (U256::ONE << 129) + U256::ONE;
        assert_eq!(low, expected_low);
        assert_eq!(sq[4], 0);
    }

    #[test]
    fn div_rem_cases() {
        assert_eq!(u(10).div_rem(u(3)), Some((u(3), u(1))));
        assert_eq!(u(10).div_rem(U256::ZERO), None);
        assert_eq!(U256::ZERO.div_rem(u(7)), Some((U256::ZERO, U256::ZERO)));
        let big = U256::MAX;
        let (q, r) = big.div_rem(u(1)).unwrap();
        assert_eq!(q, big);
        assert_eq!(r, U256::ZERO);
        // Multi-limb divisor path.
        let a = U256::from_str_hex("ffffffffffffffffffffffffffffffffffffffff").unwrap();
        let b = U256::from_str_hex("100000000000000000001").unwrap();
        let (q, r) = a.div_rem(b).unwrap();
        assert_eq!(q * b + r, a);
        assert!(r < b);
    }

    #[test]
    fn knuth_add_back_branch() {
        // Constructed so q_hat over-estimates and the add-back path runs.
        let a = U256([0, 0, 1 << 63, 1 << 63]);
        let b = U256([u64::MAX, u64::MAX >> 1, 0, 0]);
        let (q, r) = a.div_rem(b).unwrap();
        assert_eq!(q * b + r, a);
        assert!(r < b);
    }

    #[test]
    fn evm_div_zero() {
        assert_eq!(u(9).evm_div(U256::ZERO), U256::ZERO);
        assert_eq!(u(9).evm_rem(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn sdiv_smod() {
        let neg = |v: u64| u(v).twos_neg();
        assert_eq!(neg(10).evm_sdiv(u(3)), neg(3));
        assert_eq!(neg(10).evm_sdiv(neg(3)), u(3));
        assert_eq!(u(10).evm_sdiv(neg(3)), neg(3));
        assert_eq!(neg(10).evm_smod(u(3)), neg(1));
        assert_eq!(u(10).evm_smod(neg(3)), u(1));
        // MIN / -1 wraps to MIN.
        assert_eq!(U256::SIGN_BIT.evm_sdiv(U256::MAX), U256::SIGN_BIT);
        assert_eq!(u(1).evm_sdiv(U256::ZERO), U256::ZERO);
    }

    #[test]
    fn addmod_mulmod() {
        assert_eq!(u(10).addmod(u(10), u(8)), u(4));
        assert_eq!(U256::MAX.addmod(u(2), u(2)), u(1));
        assert_eq!(u(10).mulmod(u(10), u(8)), u(4));
        assert_eq!(U256::MAX.mulmod(U256::MAX, u(12)), u(9));
        assert_eq!(u(5).mulmod(u(5), U256::ZERO), U256::ZERO);
        // 512-bit reduction against a multi-limb modulus.
        let m = (U256::ONE << 130) - U256::ONE;
        let r = U256::MAX.mulmod(U256::MAX, m);
        assert!(r < m);
    }

    #[test]
    fn exp() {
        assert_eq!(u(2).wrapping_pow(u(10)), u(1024));
        assert_eq!(u(0).wrapping_pow(u(0)), u(1)); // EVM: 0**0 == 1
        assert_eq!(u(3).wrapping_pow(U256::ZERO), u(1));
        assert_eq!(u(2).wrapping_pow(u(256)), U256::ZERO); // wraps
    }

    #[test]
    fn signextend_cases() {
        // 0xff sign-extended from byte 0 -> all ones.
        assert_eq!(u(0xff).signextend(u(0)), U256::MAX);
        assert_eq!(u(0x7f).signextend(u(0)), u(0x7f));
        assert_eq!(u(0xff).signextend(u(1)), u(0xff));
        let v = u(0xdead);
        assert_eq!(v.signextend(u(31)), v);
        assert_eq!(v.signextend(U256::MAX), v);
    }

    #[test]
    fn byte_be_indexing() {
        let v =
            U256::from_str_hex("0102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f20")
                .unwrap();
        assert_eq!(v.byte_be(u(0)), u(0x01));
        assert_eq!(v.byte_be(u(31)), u(0x20));
        assert_eq!(v.byte_be(u(32)), U256::ZERO);
    }

    #[test]
    fn shifts() {
        assert_eq!(u(1) << 255, U256::SIGN_BIT);
        assert_eq!(U256::SIGN_BIT >> 255, u(1));
        assert_eq!(u(1).evm_shl(u(256)), U256::ZERO);
        assert_eq!(U256::MAX.evm_shr(u(256)), U256::ZERO);
        assert_eq!(U256::MAX.evm_sar(u(256)), U256::MAX);
        assert_eq!(
            U256::SIGN_BIT.evm_sar(u(1)),
            U256::SIGN_BIT | (U256::SIGN_BIT >> 1)
        );
        assert_eq!(u(0x10).evm_sar(u(4)), u(1));
    }

    #[test]
    fn shift_amount_boundaries() {
        // Shifts of exactly 255 (last in-range), 256, and 257 (both
        // saturating) — for positive and negative operands.
        let one = u(1);
        let neg = U256::MAX; // -1 in two's complement
        let pos = U256::MAX >> 1; // largest non-negative value

        assert_eq!(one.evm_shl(u(255)), U256::SIGN_BIT);
        assert_eq!(one.evm_shl(u(256)), U256::ZERO);
        assert_eq!(one.evm_shl(u(257)), U256::ZERO);
        assert_eq!(neg.evm_shl(u(255)), U256::SIGN_BIT);

        assert_eq!(U256::SIGN_BIT.evm_shr(u(255)), one);
        assert_eq!(neg.evm_shr(u(255)), one);
        assert_eq!(neg.evm_shr(u(256)), U256::ZERO);
        assert_eq!(neg.evm_shr(u(257)), U256::ZERO);

        // SAR of a negative value saturates to -1, a positive one to 0.
        assert_eq!(neg.evm_sar(u(255)), U256::MAX);
        assert_eq!(neg.evm_sar(u(256)), U256::MAX);
        assert_eq!(neg.evm_sar(u(257)), U256::MAX);
        assert_eq!(U256::SIGN_BIT.evm_sar(u(255)), U256::MAX);
        assert_eq!(pos.evm_sar(u(255)), U256::ZERO);
        assert_eq!(pos.evm_sar(u(256)), U256::ZERO);
        assert_eq!(pos.evm_sar(u(257)), U256::ZERO);

        // Shift amounts wider than 64 bits also saturate.
        let huge = U256::ONE << 64;
        assert_eq!(one.evm_shl(huge), U256::ZERO);
        assert_eq!(neg.evm_shr(huge), U256::ZERO);
        assert_eq!(neg.evm_sar(huge), U256::MAX);
    }

    #[test]
    fn signed_cmp_ordering() {
        let minus_one = U256::MAX;
        assert_eq!(minus_one.signed_cmp(&U256::ZERO), Ordering::Less);
        assert_eq!(U256::ZERO.signed_cmp(&minus_one), Ordering::Greater);
        assert_eq!(u(3).signed_cmp(&u(4)), Ordering::Less);
        assert_eq!(minus_one.signed_cmp(&U256::MAX), Ordering::Equal);
    }

    #[test]
    fn bytes_round_trip() {
        let v = U256::from_str_hex("deadbeefcafebabe0123456789abcdef").unwrap();
        assert_eq!(U256::from_be_bytes(v.to_be_bytes()), v);
        assert_eq!(U256::from_be_slice(&v.to_be_bytes_trimmed()), v);
        assert_eq!(U256::ZERO.to_be_bytes_trimmed(), Vec::<u8>::new());
    }

    #[test]
    fn byte_len_and_write_be_into_match_trimmed() {
        let samples = [
            U256::ZERO,
            U256::ONE,
            u(0xff),
            u(0x100),
            u(u64::MAX),
            U256::from_str_hex("deadbeefcafebabe0123456789abcdef").unwrap(),
            U256::MAX,
        ];
        for v in samples {
            let trimmed = v.to_be_bytes_trimmed();
            assert_eq!(v.byte_len(), trimmed.len(), "{v}");
            let mut buf = [0u8; 32];
            let first = v.write_be_into(&mut buf);
            assert_eq!(&buf[first..], &trimmed[..], "{v}");
            assert_eq!(buf, v.to_be_bytes(), "{v}");
        }
    }

    #[test]
    fn parsing() {
        assert_eq!("0x10".parse::<U256>().unwrap(), u(16));
        assert_eq!("10".parse::<U256>().unwrap(), u(10));
        assert_eq!(
            U256::from_str_dec(
                "115792089237316195423570985008687907853269984665640564039457584007913129639935"
            )
            .unwrap(),
            U256::MAX
        );
        assert!(U256::from_str_dec(
            "115792089237316195423570985008687907853269984665640564039457584007913129639936"
        )
        .is_err());
        assert!("0x".parse::<U256>().is_err());
        assert!("xyz".parse::<U256>().is_err());
    }

    #[test]
    fn display_and_hex() {
        assert_eq!(format!("{}", u(0)), "0");
        assert_eq!(format!("{}", u(12345)), "12345");
        assert_eq!(format!("{:x}", u(255)), "ff");
        assert_eq!(format!("{:#x}", u(255)), "0xff");
        assert_eq!(
            format!("{}", U256::MAX),
            "115792089237316195423570985008687907853269984665640564039457584007913129639935"
        );
        assert_eq!(format!("{:b}", u(5)), "101");
        assert_eq!(format!("{:X}", u(255)), "FF");
    }

    #[test]
    fn bits_and_bit() {
        assert_eq!(U256::ZERO.bits(), 0);
        assert_eq!(U256::ONE.bits(), 1);
        assert_eq!(U256::MAX.bits(), 256);
        assert_eq!((U256::ONE << 200).bits(), 201);
        assert!(U256::SIGN_BIT.bit(255));
        assert!(!U256::SIGN_BIT.bit(254));
        assert!(!U256::ONE.bit(256));
        assert_eq!(U256::MAX.count_ones(), 256);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(U256::MAX.saturating_add(u(1)), U256::MAX);
        assert_eq!(U256::ZERO.saturating_sub(u(1)), U256::ZERO);
        assert_eq!(u(4).saturating_sub(u(1)), u(3));
    }

    #[test]
    fn conversions() {
        assert_eq!(U256::from(true), U256::ONE);
        assert_eq!(U256::from(false), U256::ZERO);
        assert_eq!(U256::from(7u8).low_u64(), 7);
        assert_eq!(U256::from(u128::MAX).low_u128(), u128::MAX);
        assert_eq!(u(9).try_to_u64(), Some(9));
        assert_eq!((U256::ONE << 64).try_to_u64(), None);
        assert_eq!((U256::ONE << 200).saturating_to_usize(), usize::MAX);
    }
}
