//! The published snapshot window: contiguous heights, bounded retention,
//! reader-aware pruning, and a transaction-hash index for receipt
//! lookups.
//!
//! Publication is append-only and readers never block writers for long: a
//! lookup takes the window's read lock only to clone one `Arc` out, and
//! the write lock is held only for the push + prune bookkeeping of a
//! publish. Pruning is *reader-aware*: the window slides once it exceeds
//! the retention budget, but a snapshot is only dropped when the chain
//! holds the last reference — a reader that pinned an old height keeps
//! exactly that height (and nothing newer than necessary) alive.

use crate::obs;
use crate::snapshot::BlockSnapshot;
use mtpu_primitives::B256;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, RwLock};

#[derive(Debug, Default)]
struct Window {
    /// Retained snapshots in height order (contiguous).
    snaps: VecDeque<Arc<BlockSnapshot>>,
    /// Transaction hash → (height, index in block) for every retained
    /// block.
    tx_index: HashMap<B256, (u64, usize)>,
    /// Snapshots pruned over the chain's lifetime.
    pruned: u64,
}

/// The lock-guarded, refcount-pruned window of published snapshots.
#[derive(Debug)]
pub struct SnapshotChain {
    window: RwLock<Window>,
    retention: usize,
}

impl SnapshotChain {
    /// An empty chain retaining up to `retention` snapshots (at least 1).
    pub fn new(retention: usize) -> Self {
        SnapshotChain {
            window: RwLock::new(Window::default()),
            retention: retention.max(1),
        }
    }

    /// Publishes the next snapshot (heights must arrive in order) and
    /// prunes the tail of the window past the retention budget — but only
    /// snapshots no reader holds anymore.
    pub fn publish(&self, snap: Arc<BlockSnapshot>) {
        let mut w = self.window.write().expect("snapshot window poisoned");
        if let Some(last) = w.snaps.back() {
            assert_eq!(
                last.height() + 1,
                snap.height(),
                "snapshots must publish in height order"
            );
        }
        for (i, tx) in snap.block().transactions.iter().enumerate() {
            w.tx_index.insert(tx.hash(), (snap.height(), i));
        }
        w.snaps.push_back(snap);
        let mut pruned_now = 0u64;
        while w.snaps.len() > self.retention {
            // strong_count == 1 means the window holds the only handle:
            // no reader can observe the drop.
            let front = w.snaps.front().expect("len > retention >= 1");
            if Arc::strong_count(front) > 1 {
                break;
            }
            let dropped = w.snaps.pop_front().expect("front just seen");
            for tx in dropped.block().transactions.iter() {
                w.tx_index.remove(&tx.hash());
            }
            w.pruned += 1;
            pruned_now += 1;
        }
        if mtpu_telemetry::enabled() {
            let m = obs::metrics();
            m.published.inc();
            m.pruned.add(pruned_now);
            m.retained.set(w.snaps.len() as f64);
        }
    }

    /// The newest retained snapshot.
    pub fn latest(&self) -> Option<Arc<BlockSnapshot>> {
        self.window
            .read()
            .expect("snapshot window poisoned")
            .snaps
            .back()
            .cloned()
    }

    /// The snapshot at `height`, if still retained.
    pub fn at(&self, height: u64) -> Option<Arc<BlockSnapshot>> {
        let w = self.window.read().expect("snapshot window poisoned");
        let lo = w.snaps.front()?.height();
        let idx = height.checked_sub(lo)? as usize;
        w.snaps.get(idx).cloned()
    }

    /// The retained height range `(oldest, newest)`, if non-empty.
    pub fn retained(&self) -> Option<(u64, u64)> {
        let w = self.window.read().expect("snapshot window poisoned");
        Some((w.snaps.front()?.height(), w.snaps.back()?.height()))
    }

    /// Number of snapshots currently retained.
    pub fn len(&self) -> usize {
        self.window
            .read()
            .expect("snapshot window poisoned")
            .snaps
            .len()
    }

    /// `true` when nothing has been published (or everything pruned).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshots pruned over the chain's lifetime.
    pub fn pruned(&self) -> u64 {
        self.window.read().expect("snapshot window poisoned").pruned
    }

    /// Locates a transaction by hash among the retained blocks.
    pub fn lookup_tx(&self, hash: B256) -> Option<(u64, usize)> {
        self.window
            .read()
            .expect("snapshot window poisoned")
            .tx_index
            .get(&hash)
            .copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtpu_evm::state::State;
    use mtpu_evm::tx::{Block, BlockHeader};

    fn snap(height: u64, base: &Arc<State>) -> Arc<BlockSnapshot> {
        Arc::new(BlockSnapshot::new(
            height,
            base.clone(),
            height,
            Vec::new(),
            Arc::new(Block {
                header: BlockHeader {
                    height,
                    ..Default::default()
                },
                transactions: Vec::new(),
            }),
            Arc::new(Vec::new()),
        ))
    }

    #[test]
    fn window_slides_once_readers_drop() {
        let base = Arc::new(State::new());
        let chain = SnapshotChain::new(2);
        chain.publish(snap(0, &base));
        let pinned = chain.at(0).expect("height 0 retained");
        chain.publish(snap(1, &base));
        chain.publish(snap(2, &base));
        // Over budget, but height 0 is pinned by a reader: nothing drops.
        assert_eq!(chain.retained(), Some((0, 2)));
        assert_eq!(chain.pruned(), 0);

        drop(pinned);
        chain.publish(snap(3, &base));
        // The reader released height 0: the window snaps back to budget.
        assert_eq!(chain.retained(), Some((2, 3)));
        assert_eq!(chain.pruned(), 2);
        assert!(chain.at(0).is_none());
        assert!(chain.at(2).is_some());
    }

    #[test]
    fn out_of_order_publication_panics() {
        let base = Arc::new(State::new());
        let chain = SnapshotChain::new(4);
        chain.publish(snap(0, &base));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chain.publish(snap(5, &base));
        }));
        assert!(result.is_err());
    }
}
