//! Bounded broadcast of committed-block events to registered consumers.
//!
//! Each subscriber owns a bounded queue. Publication never blocks on a
//! slow consumer: when a queue is full the oldest event is dropped and
//! counted against that subscriber — backpressure by shedding, with the
//! drop visible to the consumer instead of silently stalling the write
//! pipeline. Lag (how many blocks behind the head a consumer runs) is
//! tracked per subscriber and exported as telemetry.

use crate::obs;
use mtpu_evm::tx::Receipt;
use mtpu_primitives::B256;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// One committed block, as delivered to subscribers. The root is always
/// present: events are emitted when the pipelined commit resolves, one
/// block behind snapshot publication at steady state.
#[derive(Debug, Clone)]
pub struct BlockEvent {
    /// Block height.
    pub height: u64,
    /// Resolved merkle root of the post-block state.
    pub merkle_root: B256,
    /// Receipts of the block, in transaction order.
    pub receipts: Arc<Vec<Receipt>>,
}

#[derive(Debug, Default)]
struct SubQueue {
    queue: VecDeque<BlockEvent>,
    /// Events shed because the queue was full.
    dropped: u64,
    /// Height of the last event handed to the consumer.
    consumed: u64,
}

#[derive(Debug, Default)]
struct FeedInner {
    subs: HashMap<u64, SubQueue>,
    next_id: u64,
    /// Height of the newest published event.
    head: u64,
}

/// The bounded broadcast hub. Cheap to share: one mutex, short critical
/// sections (a queue push per subscriber).
#[derive(Debug)]
pub struct SubscriptionFeed {
    inner: Mutex<FeedInner>,
    capacity: usize,
}

impl SubscriptionFeed {
    /// A feed whose subscribers each buffer up to `capacity` events
    /// (at least 1).
    pub fn new(capacity: usize) -> Arc<Self> {
        Arc::new(SubscriptionFeed {
            inner: Mutex::new(FeedInner::default()),
            capacity: capacity.max(1),
        })
    }

    /// Registers a consumer; events published from now on are queued for
    /// it. Dropping the [`Subscriber`] unregisters.
    pub fn subscribe(self: &Arc<Self>) -> Subscriber {
        let mut inner = self.inner.lock().expect("feed poisoned");
        let id = inner.next_id;
        inner.next_id += 1;
        let consumed = inner.head;
        inner.subs.insert(
            id,
            SubQueue {
                consumed,
                ..Default::default()
            },
        );
        Subscriber {
            feed: self.clone(),
            id,
        }
    }

    /// Number of registered subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.inner.lock().expect("feed poisoned").subs.len()
    }

    /// Broadcasts one event, shedding the oldest queued event of any
    /// subscriber already at capacity.
    pub fn publish(&self, event: BlockEvent) {
        let mut inner = self.inner.lock().expect("feed poisoned");
        inner.head = event.height;
        let head = inner.head;
        let mut dropped_now = 0u64;
        let mut max_lag = 0u64;
        let capacity = self.capacity;
        for sub in inner.subs.values_mut() {
            if sub.queue.len() >= capacity {
                sub.queue.pop_front();
                sub.dropped += 1;
                dropped_now += 1;
            }
            sub.queue.push_back(event.clone());
            max_lag = max_lag.max(head.saturating_sub(sub.consumed));
        }
        drop(inner);
        if mtpu_telemetry::enabled() {
            let m = obs::metrics();
            if dropped_now > 0 {
                m.feed_dropped.add(dropped_now);
            }
            m.feed_lag.set(max_lag as f64);
        }
    }
}

/// A registered consumer's handle: poll or drain queued events, inspect
/// lag and drops. Unregisters on drop.
#[derive(Debug)]
pub struct Subscriber {
    feed: Arc<SubscriptionFeed>,
    id: u64,
}

impl Subscriber {
    /// The oldest queued event, if any.
    pub fn poll(&self) -> Option<BlockEvent> {
        let mut inner = self.feed.inner.lock().expect("feed poisoned");
        let sub = inner.subs.get_mut(&self.id)?;
        let event = sub.queue.pop_front()?;
        sub.consumed = event.height;
        Some(event)
    }

    /// Every queued event, oldest first.
    pub fn drain(&self) -> Vec<BlockEvent> {
        let mut inner = self.feed.inner.lock().expect("feed poisoned");
        let Some(sub) = inner.subs.get_mut(&self.id) else {
            return Vec::new();
        };
        let events: Vec<BlockEvent> = sub.queue.drain(..).collect();
        if let Some(last) = events.last() {
            sub.consumed = last.height;
        }
        events
    }

    /// Blocks the head has advanced past this consumer's last poll.
    pub fn lag(&self) -> u64 {
        let inner = self.feed.inner.lock().expect("feed poisoned");
        let head = inner.head;
        inner
            .subs
            .get(&self.id)
            .map(|s| head.saturating_sub(s.consumed))
            .unwrap_or(0)
    }

    /// Events shed because this consumer fell more than the queue
    /// capacity behind.
    pub fn dropped(&self) -> u64 {
        let inner = self.feed.inner.lock().expect("feed poisoned");
        inner.subs.get(&self.id).map(|s| s.dropped).unwrap_or(0)
    }
}

impl Drop for Subscriber {
    fn drop(&mut self) {
        if let Ok(mut inner) = self.feed.inner.lock() {
            inner.subs.remove(&self.id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(height: u64) -> BlockEvent {
        BlockEvent {
            height,
            merkle_root: B256::ZERO,
            receipts: Arc::new(Vec::new()),
        }
    }

    #[test]
    fn slow_subscriber_sheds_oldest_and_counts_drops() {
        let feed = SubscriptionFeed::new(2);
        let sub = feed.subscribe();
        for h in 1..=5 {
            feed.publish(event(h));
        }
        // Capacity 2: events 1..=3 were shed, 4 and 5 remain.
        assert_eq!(sub.dropped(), 3);
        assert_eq!(sub.lag(), 5);
        let got: Vec<u64> = sub.drain().iter().map(|e| e.height).collect();
        assert_eq!(got, [4, 5]);
        assert_eq!(sub.lag(), 0, "drain catches the consumer up");
        assert!(sub.poll().is_none());
    }

    #[test]
    fn subscribers_are_independent_and_unregister_on_drop() {
        let feed = SubscriptionFeed::new(8);
        let fast = feed.subscribe();
        let slow = feed.subscribe();
        feed.publish(event(1));
        assert_eq!(fast.poll().map(|e| e.height), Some(1));
        feed.publish(event(2));
        assert_eq!(fast.lag(), 1);
        assert_eq!(slow.lag(), 2);
        assert_eq!(slow.drain().len(), 2);

        assert_eq!(feed.subscriber_count(), 2);
        drop(slow);
        assert_eq!(feed.subscriber_count(), 1);
        feed.publish(event(3));
        assert_eq!(fast.drain().len(), 2);
    }

    #[test]
    fn late_subscriber_starts_at_the_head() {
        let feed = SubscriptionFeed::new(4);
        feed.publish(event(1));
        feed.publish(event(2));
        let sub = feed.subscribe();
        assert_eq!(sub.lag(), 0, "no phantom lag for missed history");
        assert!(sub.poll().is_none());
        feed.publish(event(3));
        assert_eq!(sub.poll().map(|e| e.height), Some(3));
    }
}
