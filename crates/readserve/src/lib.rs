//! The serving half of the node: an MVCC snapshot read layer over the
//! live write pipeline (ROADMAP item 5).
//!
//! A production node answers orders of magnitude more reads — balance and
//! storage queries, `eth_call` simulation, receipt lookups — than it
//! executes writes, yet the write path owns the only mutable state
//! handle. This crate decouples the two without ever blocking execution:
//! every committed block publishes an immutable, refcounted
//! [`BlockSnapshot`] — a frozen base [`State`](mtpu_evm::State) plus a
//! chain of frozen [`BlockDelta`](mtpu_evm::BlockDelta)s — into a
//! [`SnapshotChain`] holding a bounded retention window. Any number of
//! reader threads resolve point reads and run full read-only EVM `call`
//! simulations against any retained height while
//! [`NodeDriver::run`](mtpu_mempool::NodeDriver::run) /
//! [`run_flat`](mtpu_mempool::NodeDriver::run_flat) keep executing and
//! committing at full tilt; snapshots are pruned once the window slides
//! past them *and* the last reader drops its handle.
//!
//! [`ReadServer`] is the facade: it implements the driver's
//! [`BlockSink`](mtpu_mempool::BlockSink) publication hook, serves
//! `get_balance` / `get_storage` / `get_code` / `get_nonce` /
//! receipt-by-hash / `call` at any retained height, and broadcasts
//! per-block `{height, merkle_root, receipts}` events to
//! [`SubscriptionFeed`] subscribers with lag and drop accounting.
//!
//! Consistency contract: a read at height *H* is bit-identical to the
//! same read against a sequential [`State`](mtpu_evm::State) replayed to
//! *H* — the property tests and the `read_qps` bench assert exactly this.
//! See DESIGN.md §13.

pub mod chain;
pub mod feed;
pub mod obs;
pub mod server;
pub mod snapshot;

pub use chain::SnapshotChain;
pub use feed::{BlockEvent, Subscriber, SubscriptionFeed};
pub use server::{ReadServeConfig, ReadServer};
pub use snapshot::BlockSnapshot;
