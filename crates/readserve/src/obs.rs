//! Telemetry wiring for the read layer: cached handles into the global
//! [`mtpu_telemetry`] registry, gated on [`mtpu_telemetry::enabled`].
//! Metric names are documented in DESIGN.md §13.

use mtpu_telemetry::{Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// Cached handles for the read-layer metrics.
pub struct ReadserveMetrics {
    /// `get_balance`/`get_nonce` latency in µs (`readserve.balance_us`).
    pub balance_us: Histogram,
    /// `get_storage` latency in µs (`readserve.storage_us`).
    pub storage_us: Histogram,
    /// Batched `get_many` latency in µs (`readserve.get_many_us`).
    pub get_many_us: Histogram,
    /// `get_code` latency in µs (`readserve.code_us`).
    pub code_us: Histogram,
    /// Read-only `call` simulation latency in µs (`readserve.call_us`).
    pub call_us: Histogram,
    /// Receipt-by-hash lookup latency in µs (`readserve.receipt_us`).
    pub receipt_us: Histogram,
    /// Snapshots currently retained in the window (`readserve.retained`).
    pub retained: Gauge,
    /// Worst subscriber lag in blocks (`readserve.feed_lag`).
    pub feed_lag: Gauge,
    /// Snapshots published over the chain's lifetime
    /// (`readserve.published`).
    pub published: Counter,
    /// Snapshots pruned out of the window (`readserve.pruned`).
    pub pruned: Counter,
    /// Feed events shed to slow subscribers (`readserve.dropped`).
    pub feed_dropped: Counter,
}

/// The process-wide cached handle set.
pub fn metrics() -> &'static ReadserveMetrics {
    static METRICS: OnceLock<ReadserveMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = mtpu_telemetry::global();
        ReadserveMetrics {
            balance_us: reg.histogram("readserve.balance_us"),
            storage_us: reg.histogram("readserve.storage_us"),
            get_many_us: reg.histogram("readserve.get_many_us"),
            code_us: reg.histogram("readserve.code_us"),
            call_us: reg.histogram("readserve.call_us"),
            receipt_us: reg.histogram("readserve.receipt_us"),
            retained: reg.gauge("readserve.retained"),
            feed_lag: reg.gauge("readserve.feed_lag"),
            published: reg.counter("readserve.published"),
            pruned: reg.counter("readserve.pruned"),
            feed_dropped: reg.counter("readserve.dropped"),
        }
    })
}
