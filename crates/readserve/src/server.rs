//! The read-serving facade: consumes committed blocks from the driver's
//! [`BlockSink`] hook, maintains the snapshot window, and answers point
//! reads, read-only `call` simulations, receipt lookups and block
//! subscriptions at any retained height.
//!
//! Two publication modes fall out of the two driver loops:
//!
//! * [`NodeDriver::run`](mtpu_mempool::NodeDriver::run) hands over the
//!   full post-block [`State`] (`CommittedBlock::state` is `Some`): every
//!   snapshot anchors directly at that state with an empty delta chain.
//! * [`NodeDriver::run_flat`](mtpu_mempool::NodeDriver::run_flat) only
//!   hands over the block's frozen [`BlockDelta`]: the chain grows one
//!   delta per block on top of the last materialized base, and once it
//!   exceeds [`ReadServeConfig::max_delta_chain`] the server *folds* —
//!   clones the base, applies the chain, and re-anchors — bounding the
//!   per-read resolution walk without ever touching the live database.

use crate::chain::SnapshotChain;
use crate::feed::{BlockEvent, Subscriber, SubscriptionFeed};
use crate::obs;
use crate::snapshot::BlockSnapshot;
use mtpu_evm::state::State;
use mtpu_evm::tx::Receipt;
use mtpu_evm::{call_readonly, BlockDelta, ReadCall, ReadCallOutcome, StateRead};
use mtpu_mempool::{BlockSink, CommittedBlock};
use mtpu_primitives::{Address, B256, U256};
use std::collections::HashMap;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Tuning knobs for the read layer.
#[derive(Debug, Clone)]
pub struct ReadServeConfig {
    /// Snapshots kept in the window before pruning kicks in.
    pub retention: usize,
    /// Longest delta chain a snapshot may carry before the server folds
    /// the chain into a fresh materialized base (delta-only publication).
    pub max_delta_chain: usize,
    /// Per-subscriber event queue depth before old events are shed.
    pub feed_capacity: usize,
}

impl Default for ReadServeConfig {
    fn default() -> Self {
        ReadServeConfig {
            retention: 64,
            max_delta_chain: 32,
            feed_capacity: 64,
        }
    }
}

/// Where the next snapshot anchors: the newest materialized base plus the
/// frozen deltas committed since.
#[derive(Debug)]
struct Builder {
    base: Arc<State>,
    base_height: u64,
    chain: Vec<Arc<BlockDelta>>,
}

/// The MVCC read server. Share it as `Arc<ReadServer>`: the same handle
/// is the driver's [`BlockSink`] and every reader thread's query surface.
#[derive(Debug)]
pub struct ReadServer {
    cfg: ReadServeConfig,
    chain: SnapshotChain,
    feed: Arc<SubscriptionFeed>,
    builder: Mutex<Builder>,
    /// Receipts parked between `on_block` (snapshot readable) and
    /// `on_root` (root resolved, feed event emitted).
    pending_receipts: Mutex<HashMap<u64, Arc<Vec<Receipt>>>>,
}

impl ReadServer {
    /// A server seeded with the chain's genesis state, published as the
    /// height-0 snapshot (its merkle root stays unset — genesis roots are
    /// the driver's to report).
    pub fn new(genesis: State, cfg: ReadServeConfig) -> Arc<Self> {
        let base = Arc::new(genesis);
        let server = Arc::new(ReadServer {
            chain: SnapshotChain::new(cfg.retention),
            feed: SubscriptionFeed::new(cfg.feed_capacity),
            builder: Mutex::new(Builder {
                base: base.clone(),
                base_height: 0,
                chain: Vec::new(),
            }),
            pending_receipts: Mutex::new(HashMap::new()),
            cfg,
        });
        server.chain.publish(Arc::new(BlockSnapshot::new(
            0,
            base,
            0,
            Vec::new(),
            Arc::new(mtpu_evm::tx::Block {
                header: mtpu_evm::tx::BlockHeader {
                    height: 0,
                    ..Default::default()
                },
                transactions: Vec::new(),
            }),
            Arc::new(Vec::new()),
        )));
        server
    }

    /// The newest retained snapshot.
    pub fn latest(&self) -> Option<Arc<BlockSnapshot>> {
        self.chain.latest()
    }

    /// The snapshot at `height` (`None` = latest), if still retained.
    pub fn snapshot(&self, height: Option<u64>) -> Option<Arc<BlockSnapshot>> {
        match height {
            Some(h) => self.chain.at(h),
            None => self.chain.latest(),
        }
    }

    /// The retained height range `(oldest, newest)`.
    pub fn retained(&self) -> Option<(u64, u64)> {
        self.chain.retained()
    }

    /// Snapshots pruned out of the window so far.
    pub fn pruned(&self) -> u64 {
        self.chain.pruned()
    }

    /// Balance of `addr` at `height` (`None` = latest). Returns the
    /// height actually served alongside the value.
    pub fn get_balance(&self, height: Option<u64>, addr: Address) -> Option<(u64, U256)> {
        let started = mtpu_telemetry::enabled().then(Instant::now);
        let snap = self.snapshot(height)?;
        let out = (snap.height(), snap.read_balance(addr));
        if let Some(t) = started {
            obs::metrics()
                .balance_us
                .record(t.elapsed().as_micros() as u64);
        }
        Some(out)
    }

    /// Nonce of `addr` at `height` (`None` = latest).
    pub fn get_nonce(&self, height: Option<u64>, addr: Address) -> Option<(u64, u64)> {
        let started = mtpu_telemetry::enabled().then(Instant::now);
        let snap = self.snapshot(height)?;
        let out = (snap.height(), snap.read_nonce(addr));
        if let Some(t) = started {
            obs::metrics()
                .balance_us
                .record(t.elapsed().as_micros() as u64);
        }
        Some(out)
    }

    /// Storage slot `key` of `addr` at `height` (`None` = latest).
    pub fn get_storage(
        &self,
        height: Option<u64>,
        addr: Address,
        key: U256,
    ) -> Option<(u64, U256)> {
        let started = mtpu_telemetry::enabled().then(Instant::now);
        let snap = self.snapshot(height)?;
        let out = (snap.height(), snap.read_storage(addr, key));
        if let Some(t) = started {
            obs::metrics()
                .storage_us
                .record(t.elapsed().as_micros() as u64);
        }
        Some(out)
    }

    /// Batched point read: storage slots `keys` of `addr` at `height`
    /// (`None` = latest), answered positionally. One snapshot resolution
    /// walks the delta chain per key, and every key no delta decides hits
    /// the base in a single [`StateRead::read_storage_many`] batch — so a
    /// batching backend (the flat accounts-DB) serves the whole request
    /// with one index pass instead of `keys.len()` scalar walks.
    pub fn get_many(
        &self,
        height: Option<u64>,
        addr: Address,
        keys: &[U256],
    ) -> Option<(u64, Vec<U256>)> {
        let started = mtpu_telemetry::enabled().then(Instant::now);
        let snap = self.snapshot(height)?;
        let mut values = Vec::new();
        snap.read_storage_many(addr, keys, &mut values);
        if let Some(t) = started {
            obs::metrics()
                .get_many_us
                .record(t.elapsed().as_micros() as u64);
        }
        Some((snap.height(), values))
    }

    /// Contract code of `addr` at `height` (`None` = latest).
    pub fn get_code(&self, height: Option<u64>, addr: Address) -> Option<(u64, Vec<u8>)> {
        let started = mtpu_telemetry::enabled().then(Instant::now);
        let snap = self.snapshot(height)?;
        let out = (snap.height(), snap.read_code(addr));
        if let Some(t) = started {
            obs::metrics()
                .code_us
                .record(t.elapsed().as_micros() as u64);
        }
        Some(out)
    }

    /// Runs a read-only EVM `call` simulation against the snapshot at
    /// `height` (`None` = latest). The snapshot is never mutated: the
    /// simulation writes into a throwaway overlay that is dropped with
    /// the outcome.
    pub fn call(&self, height: Option<u64>, call: &ReadCall) -> Option<(u64, ReadCallOutcome)> {
        let started = mtpu_telemetry::enabled().then(Instant::now);
        let snap = self.snapshot(height)?;
        let outcome = call_readonly(&*snap, snap.header(), call);
        if let Some(t) = started {
            obs::metrics()
                .call_us
                .record(t.elapsed().as_micros() as u64);
        }
        Some((snap.height(), outcome))
    }

    /// Locates a transaction's receipt by hash among the retained blocks:
    /// `(height, index-in-block, receipt)`.
    pub fn receipt_by_hash(&self, hash: B256) -> Option<(u64, usize, Receipt)> {
        let started = mtpu_telemetry::enabled().then(Instant::now);
        let (height, index) = self.chain.lookup_tx(hash)?;
        let snap = self.chain.at(height)?;
        let receipt = snap.receipts().get(index)?.clone();
        if let Some(t) = started {
            obs::metrics()
                .receipt_us
                .record(t.elapsed().as_micros() as u64);
        }
        Some((height, index, receipt))
    }

    /// Registers a subscriber for per-block `{height, merkle_root,
    /// receipts}` events.
    pub fn subscribe(&self) -> Subscriber {
        self.feed.subscribe()
    }

    /// The subscription hub (e.g. to count subscribers).
    pub fn feed(&self) -> &Arc<SubscriptionFeed> {
        &self.feed
    }
}

impl BlockSink for ReadServer {
    fn on_block(&self, cb: CommittedBlock) {
        let snap = {
            let mut b = self.builder.lock().expect("builder poisoned");
            if let Some(state) = cb.state {
                // Full-state publication: anchor directly, no chain.
                b.base = state;
                b.base_height = cb.height;
                b.chain.clear();
            } else {
                b.chain.push(cb.delta.clone());
                if b.chain.len() > self.cfg.max_delta_chain {
                    // Fold: materialize the chain into a fresh base so
                    // per-read resolution stays O(max_delta_chain).
                    let mut folded = (*b.base).clone();
                    for delta in &b.chain {
                        delta.apply_to(&mut folded);
                    }
                    b.base = Arc::new(folded);
                    b.base_height = cb.height;
                    b.chain.clear();
                }
            }
            Arc::new(BlockSnapshot::new(
                cb.height,
                b.base.clone(),
                b.base_height,
                b.chain.clone(),
                cb.block,
                cb.receipts.clone(),
            ))
        };
        self.chain.publish(snap);
        self.pending_receipts
            .lock()
            .expect("pending receipts poisoned")
            .insert(cb.height, cb.receipts);
    }

    fn on_root(&self, height: u64, root: B256) {
        if let Some(snap) = self.chain.at(height) {
            snap.set_root(root);
        }
        let receipts = self
            .pending_receipts
            .lock()
            .expect("pending receipts poisoned")
            .remove(&height);
        if let Some(receipts) = receipts {
            self.feed.publish(BlockEvent {
                height,
                merkle_root: root,
                receipts,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtpu_evm::state::StateOps;
    use mtpu_evm::tx::{Block, BlockHeader};
    use mtpu_evm::StateOverlay;

    fn a(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    fn u(v: u64) -> U256 {
        U256::from(v)
    }

    fn b(n: u64) -> B256 {
        let mut bytes = [0u8; 32];
        bytes[24..].copy_from_slice(&n.to_be_bytes());
        B256::new(bytes)
    }

    fn genesis() -> State {
        let mut st = State::new();
        st.credit(a(1), u(1_000));
        st.credit(a(2), u(1_000));
        st.finalize_tx();
        st
    }

    fn empty_block(height: u64) -> Arc<Block> {
        Arc::new(Block {
            header: BlockHeader {
                height,
                ..Default::default()
            },
            transactions: Vec::new(),
        })
    }

    /// One delta-only committed block that credits `to` with `amount`.
    fn delta_block(server: &ReadServer, height: u64, to: Address, amount: U256) -> CommittedBlock {
        let snap = server.latest().expect("genesis published");
        let view: &dyn StateRead = &*snap;
        let mut ov = StateOverlay::new(&view);
        ov.credit(to, amount);
        ov.finalize_tx();
        let (tx, _) = ov.into_parts();
        let mut delta = BlockDelta::new();
        delta.merge(&tx, &view);
        CommittedBlock {
            height,
            block: empty_block(height),
            receipts: Arc::new(Vec::new()),
            state: None,
            delta: Arc::new(delta),
        }
    }

    #[test]
    fn delta_publication_folds_past_max_chain() {
        let server = ReadServer::new(
            genesis(),
            ReadServeConfig {
                retention: 16,
                max_delta_chain: 3,
                feed_capacity: 8,
            },
        );
        for h in 1..=8u64 {
            server.on_block(delta_block(&server, h, a(3), u(10)));
            server.on_root(h, b(h));
        }
        let latest = server.latest().expect("retained");
        assert_eq!(latest.height(), 8);
        assert!(
            latest.delta_chain_len() <= 3,
            "fold must bound the chain, got {}",
            latest.delta_chain_len()
        );
        // 8 credits of 10 on top of nothing.
        assert_eq!(server.get_balance(None, a(3)), Some((8, u(80))));
        // Historic heights still resolve their own prefix.
        assert_eq!(server.get_balance(Some(4), a(3)), Some((4, u(40))));
        assert_eq!(server.get_balance(Some(0), a(3)), Some((0, U256::ZERO)));
        assert_eq!(server.latest().unwrap().merkle_root(), Some(b(8)));
    }

    #[test]
    fn full_state_publication_anchors_without_chain() {
        let server = ReadServer::new(genesis(), ReadServeConfig::default());
        let mut st = genesis();
        st.credit(a(5), u(77));
        st.finalize_tx();
        server.on_block(CommittedBlock {
            height: 1,
            block: empty_block(1),
            receipts: Arc::new(Vec::new()),
            state: Some(Arc::new(st)),
            delta: Arc::new(BlockDelta::new()),
        });
        let snap = server.latest().expect("published");
        assert_eq!(snap.height(), 1);
        assert_eq!(snap.delta_chain_len(), 0);
        assert_eq!(server.get_balance(None, a(5)), Some((1, u(77))));
        assert_eq!(server.get_balance(Some(0), a(5)), Some((0, U256::ZERO)));
    }

    #[test]
    fn get_many_matches_scalar_storage_reads() {
        let server = ReadServer::new(genesis(), ReadServeConfig::default());
        for h in 1..=2u64 {
            server.on_block(delta_block(&server, h, a(3), u(10)));
            server.on_root(h, b(h));
        }
        let keys = [u(0), u(1), u(9)];
        let (height, batch) = server.get_many(None, a(1), &keys).expect("retained");
        assert_eq!(height, 2);
        let scalar: Vec<U256> = keys
            .iter()
            .map(|&k| server.get_storage(None, a(1), k).expect("retained").1)
            .collect();
        assert_eq!(batch, scalar);
        // Historic heights answer too.
        assert!(server.get_many(Some(1), a(1), &keys).is_some());
    }

    #[test]
    fn feed_event_arrives_with_the_resolved_root() {
        let server = ReadServer::new(genesis(), ReadServeConfig::default());
        let sub = server.subscribe();
        server.on_block(delta_block(&server, 1, a(4), u(1)));
        assert!(sub.poll().is_none(), "no event before the root resolves");
        assert_eq!(server.latest().unwrap().merkle_root(), None);
        server.on_root(1, b(9));
        let ev = sub.poll().expect("event after on_root");
        assert_eq!(ev.height, 1);
        assert_eq!(ev.merkle_root, b(9));
        assert_eq!(server.latest().unwrap().merkle_root(), Some(b(9)));
    }
}
