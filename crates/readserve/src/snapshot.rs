//! An immutable, refcounted view of the world state at one block height.
//!
//! A [`BlockSnapshot`] anchors at a frozen base [`State`] (the state at
//! `base_height`) and stacks the frozen [`BlockDelta`]s of every block
//! from `base_height + 1` up to its own height. Reads resolve through the
//! delta chain newest-first with exactly the semantics of
//! [`OverlayedView`](mtpu_evm::OverlayedView) — the same rules the
//! parallel executor validates against — so a snapshot read at height *H*
//! is bit-identical to a sequential `State` replayed to *H*.
//!
//! Snapshots are plain immutable data behind `Arc`s: cloning a handle is
//! a refcount bump, reads take no locks, and a snapshot stays alive (and
//! consistent) for as long as any reader holds it, no matter how far the
//! write pipeline has advanced.

use mtpu_evm::state::State;
use mtpu_evm::tx::{Block, BlockHeader, Receipt};
use mtpu_evm::{BlockDelta, StateRead};
use mtpu_primitives::{Address, B256, U256};
use std::sync::{Arc, OnceLock};

fn keccak_empty() -> B256 {
    B256::keccak(&[])
}

/// The immutable world state as of one committed block, plus the block
/// itself and its receipts.
#[derive(Debug)]
pub struct BlockSnapshot {
    height: u64,
    /// Frozen state at `base_height`.
    base: Arc<State>,
    base_height: u64,
    /// Frozen per-block deltas covering `base_height + 1 ..= height`,
    /// oldest first.
    chain: Vec<Arc<BlockDelta>>,
    /// The committed block (header + transactions).
    block: Arc<Block>,
    /// Receipts in block order.
    receipts: Arc<Vec<Receipt>>,
    /// Merkle root, filled in once the pipelined commit resolves it.
    root: OnceLock<B256>,
}

impl BlockSnapshot {
    /// A snapshot at `height` over `base` (the state at `base_height`)
    /// plus the delta chain covering every block in between.
    ///
    /// # Panics
    ///
    /// Panics when the chain length does not span `base_height..height`.
    pub fn new(
        height: u64,
        base: Arc<State>,
        base_height: u64,
        chain: Vec<Arc<BlockDelta>>,
        block: Arc<Block>,
        receipts: Arc<Vec<Receipt>>,
    ) -> Self {
        assert_eq!(
            base_height + chain.len() as u64,
            height,
            "delta chain must cover base_height+1..=height"
        );
        BlockSnapshot {
            height,
            base,
            base_height,
            chain,
            block,
            receipts,
            root: OnceLock::new(),
        }
    }

    /// The snapshot's block height.
    pub fn height(&self) -> u64 {
        self.height
    }

    /// Height of the frozen base state the delta chain stacks on.
    pub fn base_height(&self) -> u64 {
        self.base_height
    }

    /// Number of frozen deltas between the base and this height.
    pub fn delta_chain_len(&self) -> usize {
        self.chain.len()
    }

    /// The committed block.
    pub fn block(&self) -> &Arc<Block> {
        &self.block
    }

    /// The header read-only simulations at this height run under.
    pub fn header(&self) -> &BlockHeader {
        &self.block.header
    }

    /// Receipts of the block, in transaction order.
    pub fn receipts(&self) -> &Arc<Vec<Receipt>> {
        &self.receipts
    }

    /// The block's merkle root, once the pipelined commit resolved it
    /// (roots trail publication by one block at steady state).
    pub fn merkle_root(&self) -> Option<B256> {
        self.root.get().copied()
    }

    /// Records the resolved root. Later calls with a different value are
    /// ignored — the first writer wins, matching `OnceLock`.
    pub(crate) fn set_root(&self, root: B256) {
        let _ = self.root.set(root);
    }
}

/// Delta-chain read resolution: walk the chain newest-first; the first
/// delta that *decides* the location wins, an undecided mention falls
/// through to older deltas and finally the base — field for field the
/// same semantics as [`OverlayedView`](mtpu_evm::OverlayedView).
impl StateRead for BlockSnapshot {
    fn read_exists(&self, addr: Address) -> bool {
        for delta in self.chain.iter().rev() {
            if let Some(d) = delta.account(addr) {
                return !d.deleted;
            }
        }
        self.base.read_exists(addr)
    }

    fn read_balance(&self, addr: Address) -> U256 {
        for delta in self.chain.iter().rev() {
            if let Some(d) = delta.account(addr) {
                if d.deleted {
                    return U256::ZERO;
                }
                if let Some(b) = d.balance {
                    return b;
                }
                if d.shadows_base {
                    return U256::ZERO;
                }
            }
        }
        self.base.read_balance(addr)
    }

    fn read_nonce(&self, addr: Address) -> u64 {
        for delta in self.chain.iter().rev() {
            if let Some(d) = delta.account(addr) {
                if d.deleted {
                    return 0;
                }
                if let Some(n) = d.nonce {
                    return n;
                }
                if d.shadows_base {
                    return 0;
                }
            }
        }
        self.base.read_nonce(addr)
    }

    fn read_code(&self, addr: Address) -> Vec<u8> {
        for delta in self.chain.iter().rev() {
            if let Some(d) = delta.account(addr) {
                if d.deleted {
                    return Vec::new();
                }
                if let Some((c, _)) = &d.code {
                    return c.clone();
                }
                if d.shadows_base {
                    return Vec::new();
                }
            }
        }
        self.base.read_code(addr)
    }

    fn read_code_hash(&self, addr: Address) -> B256 {
        for delta in self.chain.iter().rev() {
            if let Some(d) = delta.account(addr) {
                if d.deleted {
                    return B256::ZERO;
                }
                if let Some((_, h)) = &d.code {
                    return *h;
                }
                if d.shadows_base {
                    return keccak_empty();
                }
            }
        }
        self.base.read_code_hash(addr)
    }

    fn read_storage(&self, addr: Address, key: U256) -> U256 {
        for delta in self.chain.iter().rev() {
            if let Some(d) = delta.account(addr) {
                if d.deleted {
                    return U256::ZERO;
                }
                if let Some(v) = d.storage.get(&key) {
                    return *v;
                }
                if d.shadows_base {
                    return U256::ZERO;
                }
            }
        }
        self.base.read_storage(addr, key)
    }

    fn read_storage_many(&self, addr: Address, keys: &[U256], out: &mut Vec<U256>) {
        out.clear();
        out.resize(keys.len(), U256::ZERO);
        let mut miss_pos: Vec<usize> = Vec::new();
        let mut miss_keys: Vec<U256> = Vec::new();
        'keys: for (i, &key) in keys.iter().enumerate() {
            for delta in self.chain.iter().rev() {
                if let Some(d) = delta.account(addr) {
                    if d.deleted || (d.shadows_base && !d.storage.contains_key(&key)) {
                        continue 'keys; // decided: zero
                    }
                    if let Some(v) = d.storage.get(&key) {
                        out[i] = *v;
                        continue 'keys;
                    }
                }
            }
            miss_pos.push(i);
            miss_keys.push(key);
        }
        if !miss_keys.is_empty() {
            // Undecided keys hit the base as one batch, so a batching
            // backend resolves them with a single index pass.
            let mut vals = Vec::new();
            self.base.read_storage_many(addr, &miss_keys, &mut vals);
            for (slot, v) in miss_pos.into_iter().zip(vals) {
                out[slot] = v;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mtpu_evm::state::StateOps;
    use mtpu_evm::StateOverlay;

    fn a(n: u64) -> Address {
        Address::from_low_u64(n)
    }

    fn u(v: u64) -> U256 {
        U256::from(v)
    }

    fn b(n: u64) -> B256 {
        let mut bytes = [0u8; 32];
        bytes[24..].copy_from_slice(&n.to_be_bytes());
        B256::new(bytes)
    }

    fn empty_block(height: u64) -> Arc<Block> {
        Arc::new(Block {
            header: BlockHeader {
                height,
                ..Default::default()
            },
            transactions: Vec::new(),
        })
    }

    /// Builds one frozen BlockDelta by running `ops` on an overlay over
    /// the given snapshot view and merging the tx delta.
    fn delta_of(
        view: &impl StateRead,
        ops: impl FnOnce(&mut StateOverlay<'_, &dyn StateRead>),
    ) -> Arc<BlockDelta> {
        let dyn_view: &dyn StateRead = view;
        let mut ov = StateOverlay::new(&dyn_view);
        ops(&mut ov);
        ov.finalize_tx();
        let (tx, _) = ov.into_parts();
        let mut block = BlockDelta::new();
        block.merge(&tx, &dyn_view);
        Arc::new(block)
    }

    fn base_state() -> Arc<State> {
        let mut st = State::new();
        st.credit(a(1), u(1000));
        st.credit(a(2), u(500));
        st.deploy_code(a(9), vec![0x60, 0x00]);
        st.set_storage(a(9), u(1), u(42));
        st.finalize_tx();
        Arc::new(st)
    }

    #[test]
    fn chain_resolution_matches_sequential_replay() {
        let base = base_state();
        let snap0 = BlockSnapshot::new(
            0,
            base.clone(),
            0,
            Vec::new(),
            empty_block(0),
            Arc::new(Vec::new()),
        );

        // Block 1: transfer + storage write.
        let d1 = delta_of(&snap0, |ov| {
            ov.transfer(a(1), a(3), u(100));
            ov.set_storage(a(9), u(1), u(7));
        });
        let snap1 = BlockSnapshot::new(
            1,
            base.clone(),
            0,
            vec![d1.clone()],
            empty_block(1),
            Arc::new(Vec::new()),
        );

        // Block 2: balance-only touch of a(3); slot (9,1) untouched — its
        // read must fall through block 2's delta to block 1's.
        let d2 = delta_of(&snap1, |ov| {
            ov.credit(a(3), u(5));
        });
        let snap2 = BlockSnapshot::new(
            2,
            base.clone(),
            0,
            vec![d1.clone(), d2.clone()],
            empty_block(2),
            Arc::new(Vec::new()),
        );

        // Sequential oracle.
        let mut seq = (*base).clone();
        d1.apply_to(&mut seq);
        assert_eq!(snap1.read_balance(a(1)), seq.balance(a(1)));
        assert_eq!(snap1.read_balance(a(3)), seq.balance(a(3)));
        assert_eq!(snap1.read_storage(a(9), u(1)), seq.storage(a(9), u(1)));
        d2.apply_to(&mut seq);
        assert_eq!(snap2.read_balance(a(3)), seq.balance(a(3)));
        assert_eq!(snap2.read_storage(a(9), u(1)), u(7));
        assert_eq!(snap2.read_balance(a(1)), seq.balance(a(1)));
        // Older snapshots are unaffected by newer blocks (MVCC).
        assert_eq!(snap0.read_storage(a(9), u(1)), u(42));
        assert_eq!(snap0.read_balance(a(3)), U256::ZERO);
    }

    #[test]
    fn batched_storage_reads_match_scalar_resolution() {
        let base = base_state();
        let snap0 = BlockSnapshot::new(
            0,
            base.clone(),
            0,
            Vec::new(),
            empty_block(0),
            Arc::new(Vec::new()),
        );
        let d1 = delta_of(&snap0, |ov| {
            ov.set_storage(a(9), u(1), u(7));
            ov.set_storage(a(9), u(5), u(55));
        });
        let snap1 = BlockSnapshot::new(
            1,
            base.clone(),
            0,
            vec![d1.clone()],
            empty_block(1),
            Arc::new(Vec::new()),
        );
        let d2 = delta_of(&snap1, |ov| {
            ov.set_storage(a(9), u(5), u(66));
        });
        let snap2 = BlockSnapshot::new(
            2,
            base,
            0,
            vec![d1, d2],
            empty_block(2),
            Arc::new(Vec::new()),
        );

        // Mix of newest-delta hit (5), older-delta hit (1), and a key no
        // delta decides (8) that falls through to the base batch.
        let keys = [u(1), u(5), u(8)];
        let mut batch = Vec::new();
        snap2.read_storage_many(a(9), &keys, &mut batch);
        let scalar: Vec<U256> = keys.iter().map(|&k| snap2.read_storage(a(9), k)).collect();
        assert_eq!(batch, scalar);
        assert_eq!(batch, vec![u(7), u(66), U256::ZERO]);
    }

    #[test]
    fn selfdestruct_and_recreate_across_blocks() {
        let base = base_state();
        let snap0 = BlockSnapshot::new(
            0,
            base.clone(),
            0,
            Vec::new(),
            empty_block(0),
            Arc::new(Vec::new()),
        );

        // Block 1 destroys the contract.
        let d1 = delta_of(&snap0, |ov| {
            ov.mark_destructed(a(9));
        });
        let snap1 = BlockSnapshot::new(
            1,
            base.clone(),
            0,
            vec![d1.clone()],
            empty_block(1),
            Arc::new(Vec::new()),
        );
        assert!(!snap1.read_exists(a(9)));
        assert_eq!(snap1.read_storage(a(9), u(1)), U256::ZERO);
        assert_eq!(snap1.read_code(a(9)), Vec::<u8>::new());
        assert_eq!(snap1.read_code_hash(a(9)), B256::ZERO);

        // Block 2 recreates it with fresh code; old storage must NOT
        // resurrect through the chain.
        let d2 = delta_of(&snap1, |ov| {
            ov.set_code(a(9), vec![0xfe]);
            ov.set_storage(a(9), u(2), u(8));
        });
        let snap2 = BlockSnapshot::new(
            2,
            base.clone(),
            0,
            vec![d1, d2],
            empty_block(2),
            Arc::new(Vec::new()),
        );
        assert!(snap2.read_exists(a(9)));
        assert_eq!(snap2.read_code(a(9)), vec![0xfe]);
        assert_eq!(snap2.read_storage(a(9), u(2)), u(8));
        assert_eq!(
            snap2.read_storage(a(9), u(1)),
            U256::ZERO,
            "pre-destruct storage leaked through the delta chain"
        );
        // The destroyed-at-height-1 view is still intact.
        assert!(!snap1.read_exists(a(9)));
    }

    #[test]
    fn root_is_write_once() {
        let base = base_state();
        let snap = BlockSnapshot::new(0, base, 0, Vec::new(), empty_block(0), Arc::new(Vec::new()));
        assert_eq!(snap.merkle_root(), None);
        snap.set_root(b(1));
        snap.set_root(b(2));
        assert_eq!(snap.merkle_root(), Some(b(1)));
    }
}
