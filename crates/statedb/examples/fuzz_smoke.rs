//! Randomized trie churn smoke test, run by `scripts/check.sh` and CI.
//!
//! Drives 5 000 random operations (weighted insert / overwrite / delete,
//! with periodic commits) through an incremental [`Trie`], and after
//! every commit checks the root against a naive trie rebuilt from
//! scratch out of a plain `HashMap` reference model. Any divergence —
//! dirty-path tracking, branch collapse, inline-node boundaries —
//! panics; success prints a one-line summary.

use mtpu_primitives::SplitMix64;
use mtpu_statedb::{MemStore, NodeDb, Trie};
use std::collections::HashMap;

const OPS: usize = 5_000;
const COMMIT_EVERY: usize = 250;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be a u64"))
        .unwrap_or(0xF022_5EED);
    let mut rng = SplitMix64::new(seed);

    let mut db = NodeDb::new(MemStore::new());
    let mut trie = Trie::empty();
    let mut model: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    // Keys live in a bounded pool so deletes and overwrites actually hit.
    let mut pool: Vec<Vec<u8>> = Vec::new();
    let mut commits = 0usize;

    for op in 1..=OPS {
        let delete = !pool.is_empty() && rng.random_bool(0.25);
        if delete {
            let key = pool[rng.random_index(pool.len())].clone();
            trie.remove(&mut db, &key);
            model.remove(&key);
        } else {
            let reuse = !pool.is_empty() && rng.random_bool(0.4);
            let key = if reuse {
                pool[rng.random_index(pool.len())].clone()
            } else {
                let mut k = vec![0u8; rng.random_range(1..36) as usize];
                rng.fill_bytes(&mut k);
                pool.push(k.clone());
                k
            };
            let mut v = vec![0u8; rng.random_range(1..52) as usize];
            rng.fill_bytes(&mut v);
            trie.insert(&mut db, &key, &v);
            model.insert(key, v);
        }

        if op % COMMIT_EVERY == 0 {
            let got = trie.commit(&mut db);
            let mut ref_db = NodeDb::new(MemStore::new());
            let mut reference = Trie::empty();
            for (k, v) in &model {
                reference.insert(&mut ref_db, k, v);
            }
            let want = reference.commit(&mut ref_db);
            assert_eq!(
                got, want,
                "incremental root diverged from scratch rebuild at op {op}"
            );
            commits += 1;
        }
    }

    let stats = db.stats();
    println!(
        "fuzz_smoke ok: seed={seed:#x} ops={OPS} commits={commits} live_keys={} \
         nodes_hashed={} nodes_loaded={} cache_hit_rate={:.2}",
        model.len(),
        stats.nodes_hashed,
        stats.nodes_loaded,
        stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64,
    );
}
