//! A bounded, hash-addressed cache of *decoded* trie nodes.
//!
//! Trie walks resolve hash links through this cache before touching the
//! [`crate::store::NodeStore`], skipping both the store lookup and the
//! RLP decode on a hit. Eviction is FIFO — content-addressed nodes never
//! mutate, so recency tracking buys little over insertion order for the
//! top-of-trie nodes that dominate lookups, and FIFO keeps the hot path
//! to one `VecDeque` push.
//!
//! Hit/miss/eviction counts feed both the per-instance
//! [`crate::trie::TrieStats`] (always on, for assertions) and the global
//! `mtpu-telemetry` registry (`statedb.cache.*`, gated on
//! [`mtpu_telemetry::enabled`] per the workspace cost contract).

use crate::node::Node;
use mtpu_primitives::B256;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;

/// Default capacity in nodes; at ~100–500 bytes a decoded node this
/// bounds the cache to a few MiB.
pub const DEFAULT_CACHE_CAPACITY: usize = 8192;

/// Bounded FIFO cache mapping node hash → decoded node.
#[derive(Debug, Clone)]
pub struct NodeCache {
    nodes: HashMap<B256, Node>,
    order: VecDeque<B256>,
    capacity: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Default for NodeCache {
    fn default() -> Self {
        NodeCache::new(DEFAULT_CACHE_CAPACITY)
    }
}

impl NodeCache {
    /// A cache holding at most `capacity` nodes (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        NodeCache {
            nodes: HashMap::new(),
            order: VecDeque::new(),
            capacity,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Nodes currently cached.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Capacity in nodes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime `(hits, misses, evictions)` counters.
    pub fn counters(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.evictions)
    }

    /// Looks up a decoded node, counting the hit or miss.
    pub fn get(&mut self, hash: &B256) -> Option<Node> {
        match self.nodes.get(hash) {
            Some(n) => {
                self.hits += 1;
                if mtpu_telemetry::enabled() {
                    crate::obs::metrics().cache_hit.inc();
                }
                Some(n.clone())
            }
            None => {
                self.misses += 1;
                if mtpu_telemetry::enabled() {
                    crate::obs::metrics().cache_miss.inc();
                }
                None
            }
        }
    }

    /// Inserts a decoded node, evicting the oldest entry at capacity.
    pub fn put(&mut self, hash: B256, node: Node) {
        if self.capacity == 0 || self.nodes.contains_key(&hash) {
            return;
        }
        while self.nodes.len() >= self.capacity {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            self.nodes.remove(&old);
            self.evictions += 1;
            if mtpu_telemetry::enabled() {
                crate::obs::metrics().cache_evict.inc();
            }
        }
        self.order.push_back(hash);
        self.nodes.insert(hash, node);
    }
}

/// A bounded FIFO memo map — [`NodeCache`]'s eviction policy generalised
/// over key and value types. Used by the committer to memoize
/// `keccak(address)` / `keccak(slot)` secure-key hashing, which would
/// otherwise re-hash the same 20/32 bytes on every touch of a hot
/// account or slot.
#[derive(Debug, Clone)]
pub struct BoundedMemo<K, V> {
    map: HashMap<K, V>,
    order: VecDeque<K>,
    capacity: usize,
}

impl<K: Eq + Hash + Clone, V: Clone> BoundedMemo<K, V> {
    /// A memo holding at most `capacity` entries (0 disables memoizing).
    pub fn new(capacity: usize) -> Self {
        BoundedMemo {
            map: HashMap::new(),
            order: VecDeque::new(),
            capacity,
        }
    }

    /// Entries currently memoized.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is memoized.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The memoized value for `key`, computing and inserting it with `f`
    /// on a miss (evicting the oldest entry at capacity).
    pub fn get_or_insert_with(&mut self, key: &K, f: impl FnOnce() -> V) -> V {
        if let Some(v) = self.map.get(key) {
            return v.clone();
        }
        let v = f();
        if self.capacity == 0 {
            return v;
        }
        while self.map.len() >= self.capacity {
            let Some(old) = self.order.pop_front() else {
                break;
            };
            self.map.remove(&old);
        }
        self.order.push_back(key.clone());
        self.map.insert(key.clone(), v.clone());
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(n: u8) -> Node {
        Node::Leaf {
            path: vec![n & 0x0f],
            value: vec![n],
        }
    }

    fn h(n: u8) -> B256 {
        B256::keccak(&[n])
    }

    #[test]
    fn hit_and_miss_counting() {
        let mut c = NodeCache::new(4);
        assert!(c.get(&h(1)).is_none());
        c.put(h(1), leaf(1));
        assert_eq!(c.get(&h(1)), Some(leaf(1)));
        let (hits, misses, evictions) = c.counters();
        assert_eq!((hits, misses, evictions), (1, 1, 0));
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let mut c = NodeCache::new(2);
        c.put(h(1), leaf(1));
        c.put(h(2), leaf(2));
        c.put(h(3), leaf(3)); // evicts h(1)
        assert_eq!(c.len(), 2);
        assert!(c.get(&h(1)).is_none());
        assert!(c.get(&h(3)).is_some());
        assert_eq!(c.counters().2, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = NodeCache::new(0);
        c.put(h(1), leaf(1));
        assert!(c.is_empty());
        assert!(c.get(&h(1)).is_none());
    }

    #[test]
    fn duplicate_put_is_noop() {
        let mut c = NodeCache::new(2);
        c.put(h(1), leaf(1));
        c.put(h(1), leaf(1));
        assert_eq!(c.len(), 1);
        assert_eq!(c.capacity(), 2);
    }

    #[test]
    fn memo_computes_once_and_evicts_fifo() {
        use std::cell::Cell;
        let mut m: BoundedMemo<u32, u64> = BoundedMemo::new(2);
        let calls = Cell::new(0u32);
        let probe = |m: &mut BoundedMemo<u32, u64>, k: u32| {
            m.get_or_insert_with(&k, || {
                calls.set(calls.get() + 1);
                u64::from(k) * 10
            })
        };
        assert_eq!(probe(&mut m, 1), 10);
        assert_eq!(probe(&mut m, 1), 10);
        assert_eq!(calls.get(), 1, "second lookup must hit the memo");
        probe(&mut m, 2);
        probe(&mut m, 3); // evicts key 1
        assert_eq!(m.len(), 2);
        assert_eq!(probe(&mut m, 1), 10);
        assert_eq!(calls.get(), 4, "evicted key is recomputed");
    }

    #[test]
    fn zero_capacity_memo_still_computes() {
        let mut m: BoundedMemo<u32, u64> = BoundedMemo::new(0);
        assert_eq!(m.get_or_insert_with(&5, || 50), 50);
        assert!(m.is_empty());
    }
}
