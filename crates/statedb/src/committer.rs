//! The *secure* state trie: account and storage commitment on top of
//! [`Trie`].
//!
//! Layout follows Ethereum exactly:
//!
//! * the account trie is keyed by `keccak(address)`; each leaf holds
//!   `rlp([nonce, balance, storage_root, code_hash])`;
//! * each account's storage trie is keyed by `keccak(slot_be32)` with
//!   `rlp(value_trimmed)` leaves, and its root is embedded in the
//!   account leaf — so one 32-byte state root authenticates every
//!   account field and every storage slot;
//! * zero-valued slots and empty values are absent, not stored.
//!
//! [`StateCommitter`] keeps the account trie open across blocks and
//! re-opens per-account storage tries from the roots recorded in the
//! account leaves, so a block that touches *k* accounts re-hashes only
//! those accounts' paths.

use crate::cache::BoundedMemo;
use crate::store::NodeStore;
use crate::trie::{empty_root, NodeBatch, NodeDb, Trie, TrieStats};
use mtpu_primitives::rlp::{self, Item};
use mtpu_primitives::{Address, B256, U256};
use std::collections::HashMap;
use std::sync::OnceLock;
use std::time::Instant;

/// Bound on each secure-key memo (addresses and slots memoized
/// separately); at 52–64 bytes an entry this is a few hundred KiB.
const SECURE_KEY_MEMO_CAPACITY: usize = 4096;

/// Fewest dirty accounts worth fanning storage-trie commits across
/// threads; below this the spawn cost dominates.
const PAR_MIN_SUBTRIES: usize = 4;

/// `keccak("")` — code hash of an account with no code.
pub fn empty_code_hash() -> B256 {
    static HASH: OnceLock<B256> = OnceLock::new();
    *HASH.get_or_init(|| B256::keccak(&[]))
}

/// The four-field account body stored in an account-trie leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccountRecord {
    /// Transaction / creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Root of this account's storage trie.
    pub storage_root: B256,
    /// `keccak(code)`.
    pub code_hash: B256,
}

impl AccountRecord {
    /// A fresh account: zero nonce and balance, empty storage and code.
    pub fn empty() -> AccountRecord {
        AccountRecord {
            nonce: 0,
            balance: U256::ZERO,
            storage_root: empty_root(),
            code_hash: empty_code_hash(),
        }
    }

    /// Canonical `rlp([nonce, balance, storage_root, code_hash])`.
    pub fn encode(&self) -> Vec<u8> {
        rlp::encode_list(&[
            Item::uint(self.nonce),
            Item::u256(self.balance),
            Item::bytes(self.storage_root.as_bytes().to_vec()),
            Item::bytes(self.code_hash.as_bytes().to_vec()),
        ])
    }

    /// Decodes an account body; `None` if the bytes are not a well-formed
    /// four-field record.
    pub fn decode(raw: &[u8]) -> Option<AccountRecord> {
        let item = rlp::decode(raw).ok()?;
        let fields = item.as_list()?;
        if fields.len() != 4 {
            return None;
        }
        let nonce = fields[0].to_u256().ok()?.try_to_u64()?;
        let balance = fields[1].to_u256().ok()?;
        let storage_root = B256::new(fields[2].as_bytes()?.try_into().ok()?);
        let code_hash = B256::new(fields[3].as_bytes()?.try_into().ok()?);
        Some(AccountRecord {
            nonce,
            balance,
            storage_root,
            code_hash,
        })
    }
}

/// One account's worth of changes for [`StateCommitter::update_account`].
#[derive(Debug, Clone)]
pub struct AccountUpdate {
    /// New nonce.
    pub nonce: u64,
    /// New balance.
    pub balance: U256,
    /// New code hash ([`empty_code_hash`] for code-less accounts).
    pub code_hash: B256,
    /// When `true`, the account's previous storage trie is discarded and
    /// rebuilt from `storage` alone (account re-creation after deletion);
    /// when `false`, `storage` is applied as a delta over the existing
    /// trie.
    pub reset_storage: bool,
    /// Slot writes; a zero value removes the slot.
    pub storage: Vec<(U256, U256)>,
}

impl AccountUpdate {
    /// An update carrying just nonce/balance/code, no storage writes.
    pub fn plain(nonce: u64, balance: U256, code_hash: B256) -> AccountUpdate {
        AccountUpdate {
            nonce,
            balance,
            code_hash,
            reset_storage: false,
            storage: Vec::new(),
        }
    }
}

/// Authenticated state commitment over a pluggable node store.
///
/// ```
/// use mtpu_primitives::{Address, U256};
/// use mtpu_statedb::{AccountUpdate, MemStore, StateCommitter};
///
/// let mut c = StateCommitter::new(MemStore::new());
/// let mut up = AccountUpdate::plain(1, U256::from_limbs([100, 0, 0, 0]),
///                                   mtpu_statedb::empty_code_hash());
/// up.storage.push((U256::ONE, U256::from_limbs([7, 0, 0, 0])));
/// c.update_account(&Address::from_low_u64(1), &up);
/// let root = c.commit();
/// assert_ne!(root, mtpu_statedb::empty_root());
/// ```
#[derive(Debug)]
pub struct StateCommitter<S: NodeStore> {
    db: NodeDb<S>,
    accounts: Trie,
    /// Accounts with open (uncommitted) storage tries, in first-touch
    /// order — the canonical order every commit path processes them in,
    /// which is what makes the parallel merge deterministic.
    dirty: Vec<(Address, OpenAccount)>,
    /// Address → index into `dirty`.
    dirty_index: HashMap<Address, usize>,
    keys: SecureKeys,
    threads: usize,
}

/// A buffered account: its pending record fields plus its open storage
/// trie. The record's `storage_root` is stale until the trie commits.
#[derive(Debug)]
struct OpenAccount {
    record: AccountRecord,
    storage: Trie,
}

/// Bounded memos of the secure-trie key hashes (the keccak of every
/// touched address and slot), so hot accounts and slots hash their keys
/// once per eviction window instead of once per touch.
#[derive(Debug)]
struct SecureKeys {
    addrs: BoundedMemo<Address, B256>,
    slots: BoundedMemo<U256, B256>,
}

impl SecureKeys {
    fn new() -> SecureKeys {
        SecureKeys {
            addrs: BoundedMemo::new(SECURE_KEY_MEMO_CAPACITY),
            slots: BoundedMemo::new(SECURE_KEY_MEMO_CAPACITY),
        }
    }

    /// Secure account-trie key: `keccak(address)`.
    fn account(&mut self, addr: &Address) -> B256 {
        self.addrs
            .get_or_insert_with(addr, || B256::keccak(addr.as_bytes()))
    }

    /// Secure storage-trie key: `keccak(slot as 32 big-endian bytes)`.
    fn slot(&mut self, slot: U256) -> B256 {
        self.slots
            .get_or_insert_with(&slot, || B256::keccak(&slot.to_be_bytes()))
    }
}

impl<S: NodeStore> StateCommitter<S> {
    /// Opens a committer over `store`, resuming from the store's last
    /// synced root (or the empty trie for a fresh store).
    pub fn new(store: S) -> StateCommitter<S> {
        let accounts = match store.root() {
            Some(root) => Trie::from_root(root),
            None => Trie::empty(),
        };
        StateCommitter {
            db: NodeDb::new(store),
            accounts,
            dirty: Vec::new(),
            dirty_index: HashMap::new(),
            keys: SecureKeys::new(),
            threads: 1,
        }
    }

    /// Sets the worker-thread count for [`StateCommitter::commit`]
    /// (builder form). 1 (the default) commits serially; the root is
    /// identical either way.
    pub fn with_threads(mut self, threads: usize) -> StateCommitter<S> {
        self.set_threads(threads);
        self
    }

    /// Sets the worker-thread count for subsequent commits.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured commit worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Reads an account record, if the account exists. For an account
    /// with buffered changes this commits its open storage trie first so
    /// the returned `storage_root` is live.
    pub fn account(&mut self, addr: &Address) -> Option<AccountRecord> {
        if let Some(&i) = self.dirty_index.get(addr) {
            let entry = &mut self.dirty[i].1;
            entry.record.storage_root = entry.storage.commit_into(&mut self.db);
            return Some(entry.record);
        }
        let key = self.keys.account(addr);
        let raw = self.accounts.get(&mut self.db, key.as_bytes())?;
        Some(AccountRecord::decode(&raw).expect("stored account record decodes"))
    }

    /// Reads one storage slot (zero when absent); buffered writes are
    /// visible immediately.
    pub fn storage_value(&mut self, addr: &Address, slot: U256) -> U256 {
        let key = self.keys.slot(slot);
        let raw = if let Some(&i) = self.dirty_index.get(addr) {
            self.dirty[i].1.storage.get(&mut self.db, key.as_bytes())
        } else {
            let Some(record) = self.account(addr) else {
                return U256::ZERO;
            };
            Trie::from_root(record.storage_root).get(&mut self.db, key.as_bytes())
        };
        match raw {
            Some(raw) => rlp::decode(&raw)
                .ok()
                .and_then(|item| item.to_u256().ok())
                .expect("stored slot value decodes"),
            None => U256::ZERO,
        }
    }

    /// Applies one account's changes to its buffered record and open
    /// storage trie. Nothing is hashed here — the storage trie commits
    /// (possibly on a worker thread) at the next
    /// [`StateCommitter::commit`].
    pub fn update_account(&mut self, addr: &Address, up: &AccountUpdate) {
        let i = match self.dirty_index.get(addr) {
            Some(&i) => i,
            None => {
                let key = self.keys.account(addr);
                let record = self
                    .accounts
                    .get(&mut self.db, key.as_bytes())
                    .map(|raw| AccountRecord::decode(&raw).expect("stored account record decodes"))
                    .unwrap_or_else(AccountRecord::empty);
                let storage = Trie::from_root(record.storage_root);
                let i = self.dirty.len();
                self.dirty.push((*addr, OpenAccount { record, storage }));
                self.dirty_index.insert(*addr, i);
                i
            }
        };
        let entry = &mut self.dirty[i].1;
        entry.record.nonce = up.nonce;
        entry.record.balance = up.balance;
        entry.record.code_hash = up.code_hash;
        if up.reset_storage {
            entry.storage = Trie::empty();
        }
        for &(slot, value) in &up.storage {
            let key = self.keys.slot(slot);
            let entry = &mut self.dirty[i].1;
            if value.is_zero() {
                entry.storage.remove(&mut self.db, key.as_bytes());
            } else {
                let raw = rlp::encode(&Item::u256(value));
                entry.storage.insert(&mut self.db, key.as_bytes(), &raw);
            }
        }
    }

    /// Removes an account (selfdestruct), discarding any buffered
    /// changes. Its storage nodes remain in the archive store but are no
    /// longer reachable from the state root.
    pub fn delete_account(&mut self, addr: &Address) {
        if let Some(i) = self.dirty_index.remove(addr) {
            self.dirty.remove(i);
            for idx in self.dirty_index.values_mut() {
                if *idx > i {
                    *idx -= 1;
                }
            }
        }
        let key = self.keys.account(addr);
        self.accounts.remove(&mut self.db, key.as_bytes());
    }

    /// Commits every dirty path and returns the state root.
    ///
    /// Buffered storage tries commit first — across up to
    /// [`StateCommitter::threads`] scoped workers when the dirty set is
    /// large enough — then their account leaves are inserted in
    /// first-touch order and the accounts trie commits (itself fanning
    /// dirty root-branch children across the workers). Every path yields
    /// the same root and the same store append order; see DESIGN.md §10.
    pub fn commit(&mut self) -> B256 {
        let _span = mtpu_telemetry::span("statedb.commit", "statedb");
        self.flush_dirty();
        if self.threads > 1 {
            self.accounts.commit_parallel(&mut self.db, self.threads)
        } else {
            self.accounts.commit(&mut self.db)
        }
    }

    /// Commits all open storage tries and inserts their account leaves.
    fn flush_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let mut dirty = std::mem::take(&mut self.dirty);
        self.dirty_index.clear();
        let workers = self.threads.min(dirty.len());
        if workers > 1 && dirty.len() >= PAR_MIN_SUBTRIES {
            // Contiguous runs of the first-touch order, one per worker;
            // absorbing the batches in run order reproduces the exact
            // append order of the serial loop below.
            let chunk = dirty.len().div_ceil(workers);
            let mut busy_ns = 0u64;
            let batches: Vec<NodeBatch> = std::thread::scope(|s| {
                let handles: Vec<_> = dirty
                    .chunks_mut(chunk)
                    .map(|entries| {
                        s.spawn(move || {
                            let started = Instant::now();
                            let mut batch = NodeBatch::new();
                            for (_, entry) in entries.iter_mut() {
                                entry.record.storage_root = entry.storage.commit_into(&mut batch);
                            }
                            (batch, started.elapsed().as_nanos() as u64)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        let (batch, ns) = h.join().expect("storage-commit worker panicked");
                        busy_ns += ns;
                        batch
                    })
                    .collect()
            });
            for batch in batches {
                self.db.absorb_batch(batch);
            }
            if mtpu_telemetry::enabled() {
                let m = crate::obs::metrics();
                m.par_subtries.add(dirty.len() as u64);
                m.par_busy_ns.add(busy_ns);
            }
        } else {
            for (_, entry) in dirty.iter_mut() {
                entry.record.storage_root = entry.storage.commit_into(&mut self.db);
            }
        }
        for (addr, entry) in &dirty {
            let key = self.keys.account(addr);
            self.accounts
                .insert(&mut self.db, key.as_bytes(), &entry.record.encode());
        }
    }

    /// Commits, then durably syncs the store at the new root.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O error.
    pub fn persist(&mut self) -> std::io::Result<B256> {
        let root = self.commit();
        self.db.sync(root)?;
        Ok(root)
    }

    /// Work-counter snapshot for the underlying node db.
    pub fn stats(&self) -> TrieStats {
        self.db.stats()
    }

    /// Borrows the backing store.
    pub fn store(&self) -> &S {
        self.db.store()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn u(n: u64) -> U256 {
        U256::from_limbs([n, 0, 0, 0])
    }

    #[test]
    fn account_record_round_trips() {
        let rec = AccountRecord {
            nonce: 42,
            balance: u(1_000_000),
            storage_root: B256::keccak(b"storage"),
            code_hash: B256::keccak(b"code"),
        };
        assert_eq!(AccountRecord::decode(&rec.encode()), Some(rec));
        let empty = AccountRecord::empty();
        assert_eq!(AccountRecord::decode(&empty.encode()), Some(empty));
        assert!(AccountRecord::decode(b"junk").is_none());
    }

    #[test]
    fn empty_state_has_empty_root() {
        let mut c = StateCommitter::new(MemStore::new());
        assert_eq!(c.commit(), empty_root());
    }

    #[test]
    fn storage_writes_change_root_and_read_back() {
        let mut c = StateCommitter::new(MemStore::new());
        let addr = Address::from_low_u64(7);
        let mut up = AccountUpdate::plain(1, u(500), empty_code_hash());
        up.storage.push((u(1), u(11)));
        up.storage.push((u(2), u(22)));
        c.update_account(&addr, &up);
        let r1 = c.commit();

        assert_eq!(c.storage_value(&addr, u(1)), u(11));
        assert_eq!(c.storage_value(&addr, u(2)), u(22));
        assert_eq!(c.storage_value(&addr, u(3)), U256::ZERO);
        let rec = c.account(&addr).unwrap();
        assert_eq!(rec.nonce, 1);
        assert_eq!(rec.balance, u(500));
        assert_ne!(rec.storage_root, empty_root());

        // Zeroing both slots restores the empty storage root.
        let mut clear = AccountUpdate::plain(2, u(500), empty_code_hash());
        clear.storage.push((u(1), U256::ZERO));
        clear.storage.push((u(2), U256::ZERO));
        c.update_account(&addr, &clear);
        let r2 = c.commit();
        assert_ne!(r1, r2);
        assert_eq!(c.account(&addr).unwrap().storage_root, empty_root());
    }

    #[test]
    fn delete_account_restores_prior_root() {
        let mut c = StateCommitter::new(MemStore::new());
        let a = Address::from_low_u64(1);
        let b = Address::from_low_u64(2);
        c.update_account(&a, &AccountUpdate::plain(1, u(10), empty_code_hash()));
        let only_a = c.commit();
        c.update_account(&b, &AccountUpdate::plain(1, u(20), empty_code_hash()));
        let both = c.commit();
        assert_ne!(only_a, both);
        c.delete_account(&b);
        assert_eq!(c.commit(), only_a);
        assert!(c.account(&b).is_none());
    }

    #[test]
    fn reset_storage_discards_old_slots() {
        let mut c = StateCommitter::new(MemStore::new());
        let addr = Address::from_low_u64(9);
        let mut up = AccountUpdate::plain(1, u(1), empty_code_hash());
        up.storage.push((u(5), u(55)));
        c.update_account(&addr, &up);
        c.commit();

        // Re-create the account with different storage; slot 5 must not
        // leak through.
        let mut fresh = AccountUpdate::plain(1, u(1), empty_code_hash());
        fresh.reset_storage = true;
        fresh.storage.push((u(6), u(66)));
        c.update_account(&addr, &fresh);
        c.commit();
        assert_eq!(c.storage_value(&addr, u(5)), U256::ZERO);
        assert_eq!(c.storage_value(&addr, u(6)), u(66));
    }

    #[test]
    fn commit_resumes_from_synced_store_root() {
        let mut store = MemStore::new();
        let addr = Address::from_low_u64(3);
        let root = {
            let mut c = StateCommitter::new(store.clone());
            let mut up = AccountUpdate::plain(1, u(77), empty_code_hash());
            up.storage.push((u(1), u(2)));
            c.update_account(&addr, &up);
            let root = c.persist().unwrap();
            store = c.store().clone();
            root
        };
        let mut reopened = StateCommitter::new(store);
        assert_eq!(reopened.commit(), root);
        assert_eq!(reopened.storage_value(&addr, u(1)), u(2));
        assert_eq!(reopened.account(&addr).unwrap().balance, u(77));
    }
}
