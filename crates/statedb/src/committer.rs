//! The *secure* state trie: account and storage commitment on top of
//! [`Trie`].
//!
//! Layout follows Ethereum exactly:
//!
//! * the account trie is keyed by `keccak(address)`; each leaf holds
//!   `rlp([nonce, balance, storage_root, code_hash])`;
//! * each account's storage trie is keyed by `keccak(slot_be32)` with
//!   `rlp(value_trimmed)` leaves, and its root is embedded in the
//!   account leaf — so one 32-byte state root authenticates every
//!   account field and every storage slot;
//! * zero-valued slots and empty values are absent, not stored.
//!
//! [`StateCommitter`] keeps the account trie open across blocks and
//! re-opens per-account storage tries from the roots recorded in the
//! account leaves, so a block that touches *k* accounts re-hashes only
//! those accounts' paths.

use crate::store::NodeStore;
use crate::trie::{empty_root, NodeDb, Trie, TrieStats};
use mtpu_primitives::rlp::{self, Item};
use mtpu_primitives::{Address, B256, U256};
use std::sync::OnceLock;

/// `keccak("")` — code hash of an account with no code.
pub fn empty_code_hash() -> B256 {
    static HASH: OnceLock<B256> = OnceLock::new();
    *HASH.get_or_init(|| B256::keccak(&[]))
}

/// The four-field account body stored in an account-trie leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccountRecord {
    /// Transaction / creation counter.
    pub nonce: u64,
    /// Balance in wei.
    pub balance: U256,
    /// Root of this account's storage trie.
    pub storage_root: B256,
    /// `keccak(code)`.
    pub code_hash: B256,
}

impl AccountRecord {
    /// A fresh account: zero nonce and balance, empty storage and code.
    pub fn empty() -> AccountRecord {
        AccountRecord {
            nonce: 0,
            balance: U256::ZERO,
            storage_root: empty_root(),
            code_hash: empty_code_hash(),
        }
    }

    /// Canonical `rlp([nonce, balance, storage_root, code_hash])`.
    pub fn encode(&self) -> Vec<u8> {
        rlp::encode_list(&[
            Item::uint(self.nonce),
            Item::u256(self.balance),
            Item::bytes(self.storage_root.as_bytes().to_vec()),
            Item::bytes(self.code_hash.as_bytes().to_vec()),
        ])
    }

    /// Decodes an account body; `None` if the bytes are not a well-formed
    /// four-field record.
    pub fn decode(raw: &[u8]) -> Option<AccountRecord> {
        let item = rlp::decode(raw).ok()?;
        let fields = item.as_list()?;
        if fields.len() != 4 {
            return None;
        }
        let nonce = fields[0].to_u256().ok()?.try_to_u64()?;
        let balance = fields[1].to_u256().ok()?;
        let storage_root = B256::new(fields[2].as_bytes()?.try_into().ok()?);
        let code_hash = B256::new(fields[3].as_bytes()?.try_into().ok()?);
        Some(AccountRecord {
            nonce,
            balance,
            storage_root,
            code_hash,
        })
    }
}

/// One account's worth of changes for [`StateCommitter::update_account`].
#[derive(Debug, Clone)]
pub struct AccountUpdate {
    /// New nonce.
    pub nonce: u64,
    /// New balance.
    pub balance: U256,
    /// New code hash ([`empty_code_hash`] for code-less accounts).
    pub code_hash: B256,
    /// When `true`, the account's previous storage trie is discarded and
    /// rebuilt from `storage` alone (account re-creation after deletion);
    /// when `false`, `storage` is applied as a delta over the existing
    /// trie.
    pub reset_storage: bool,
    /// Slot writes; a zero value removes the slot.
    pub storage: Vec<(U256, U256)>,
}

impl AccountUpdate {
    /// An update carrying just nonce/balance/code, no storage writes.
    pub fn plain(nonce: u64, balance: U256, code_hash: B256) -> AccountUpdate {
        AccountUpdate {
            nonce,
            balance,
            code_hash,
            reset_storage: false,
            storage: Vec::new(),
        }
    }
}

/// Authenticated state commitment over a pluggable node store.
///
/// ```
/// use mtpu_primitives::{Address, U256};
/// use mtpu_statedb::{AccountUpdate, MemStore, StateCommitter};
///
/// let mut c = StateCommitter::new(MemStore::new());
/// let mut up = AccountUpdate::plain(1, U256::from_limbs([100, 0, 0, 0]),
///                                   mtpu_statedb::empty_code_hash());
/// up.storage.push((U256::ONE, U256::from_limbs([7, 0, 0, 0])));
/// c.update_account(&Address::from_low_u64(1), &up);
/// let root = c.commit();
/// assert_ne!(root, mtpu_statedb::empty_root());
/// ```
#[derive(Debug)]
pub struct StateCommitter<S: NodeStore> {
    db: NodeDb<S>,
    accounts: Trie,
}

impl<S: NodeStore> StateCommitter<S> {
    /// Opens a committer over `store`, resuming from the store's last
    /// synced root (or the empty trie for a fresh store).
    pub fn new(store: S) -> StateCommitter<S> {
        let accounts = match store.root() {
            Some(root) => Trie::from_root(root),
            None => Trie::empty(),
        };
        StateCommitter {
            db: NodeDb::new(store),
            accounts,
        }
    }

    /// Reads an account record, if the account exists.
    pub fn account(&mut self, addr: &Address) -> Option<AccountRecord> {
        let raw = self
            .accounts
            .get(&mut self.db, B256::keccak(addr.as_bytes()).as_bytes())?;
        Some(AccountRecord::decode(&raw).expect("stored account record decodes"))
    }

    /// Reads one storage slot (zero when absent).
    pub fn storage_value(&mut self, addr: &Address, slot: U256) -> U256 {
        let Some(record) = self.account(addr) else {
            return U256::ZERO;
        };
        let storage = Trie::from_root(record.storage_root);
        match storage.get(&mut self.db, storage_key(slot).as_bytes()) {
            Some(raw) => rlp::decode(&raw)
                .ok()
                .and_then(|item| item.to_u256().ok())
                .expect("stored slot value decodes"),
            None => U256::ZERO,
        }
    }

    /// Applies one account's changes: updates its storage trie, commits
    /// it, and re-inserts the account leaf with the fresh storage root.
    pub fn update_account(&mut self, addr: &Address, up: &AccountUpdate) {
        let prev = self.account(addr);
        let prev_storage_root = match (&prev, up.reset_storage) {
            (Some(rec), false) => rec.storage_root,
            _ => empty_root(),
        };

        let storage_root = if up.storage.is_empty() && prev_storage_root == empty_root() {
            empty_root()
        } else if up.storage.is_empty() {
            prev_storage_root
        } else {
            let mut storage = Trie::from_root(prev_storage_root);
            for &(slot, value) in &up.storage {
                let key = storage_key(slot);
                if value.is_zero() {
                    storage.remove(&mut self.db, key.as_bytes());
                } else {
                    let raw = rlp::encode(&Item::u256(value));
                    storage.insert(&mut self.db, key.as_bytes(), &raw);
                }
            }
            storage.commit(&mut self.db)
        };

        let record = AccountRecord {
            nonce: up.nonce,
            balance: up.balance,
            storage_root,
            code_hash: up.code_hash,
        };
        self.accounts.insert(
            &mut self.db,
            B256::keccak(addr.as_bytes()).as_bytes(),
            &record.encode(),
        );
    }

    /// Removes an account (selfdestruct). Its storage nodes remain in the
    /// archive store but are no longer reachable from the state root.
    pub fn delete_account(&mut self, addr: &Address) {
        self.accounts
            .remove(&mut self.db, B256::keccak(addr.as_bytes()).as_bytes());
    }

    /// Commits every dirty path and returns the state root.
    pub fn commit(&mut self) -> B256 {
        self.accounts.commit(&mut self.db)
    }

    /// Commits, then durably syncs the store at the new root.
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O error.
    pub fn persist(&mut self) -> std::io::Result<B256> {
        let root = self.commit();
        self.db.sync(root)?;
        Ok(root)
    }

    /// Work-counter snapshot for the underlying node db.
    pub fn stats(&self) -> TrieStats {
        self.db.stats()
    }

    /// Borrows the backing store.
    pub fn store(&self) -> &S {
        self.db.store()
    }
}

/// Secure storage-trie key: `keccak(slot as 32 big-endian bytes)`.
fn storage_key(slot: U256) -> B256 {
    B256::keccak(&slot.to_be_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn u(n: u64) -> U256 {
        U256::from_limbs([n, 0, 0, 0])
    }

    #[test]
    fn account_record_round_trips() {
        let rec = AccountRecord {
            nonce: 42,
            balance: u(1_000_000),
            storage_root: B256::keccak(b"storage"),
            code_hash: B256::keccak(b"code"),
        };
        assert_eq!(AccountRecord::decode(&rec.encode()), Some(rec));
        let empty = AccountRecord::empty();
        assert_eq!(AccountRecord::decode(&empty.encode()), Some(empty));
        assert!(AccountRecord::decode(b"junk").is_none());
    }

    #[test]
    fn empty_state_has_empty_root() {
        let mut c = StateCommitter::new(MemStore::new());
        assert_eq!(c.commit(), empty_root());
    }

    #[test]
    fn storage_writes_change_root_and_read_back() {
        let mut c = StateCommitter::new(MemStore::new());
        let addr = Address::from_low_u64(7);
        let mut up = AccountUpdate::plain(1, u(500), empty_code_hash());
        up.storage.push((u(1), u(11)));
        up.storage.push((u(2), u(22)));
        c.update_account(&addr, &up);
        let r1 = c.commit();

        assert_eq!(c.storage_value(&addr, u(1)), u(11));
        assert_eq!(c.storage_value(&addr, u(2)), u(22));
        assert_eq!(c.storage_value(&addr, u(3)), U256::ZERO);
        let rec = c.account(&addr).unwrap();
        assert_eq!(rec.nonce, 1);
        assert_eq!(rec.balance, u(500));
        assert_ne!(rec.storage_root, empty_root());

        // Zeroing both slots restores the empty storage root.
        let mut clear = AccountUpdate::plain(2, u(500), empty_code_hash());
        clear.storage.push((u(1), U256::ZERO));
        clear.storage.push((u(2), U256::ZERO));
        c.update_account(&addr, &clear);
        let r2 = c.commit();
        assert_ne!(r1, r2);
        assert_eq!(c.account(&addr).unwrap().storage_root, empty_root());
    }

    #[test]
    fn delete_account_restores_prior_root() {
        let mut c = StateCommitter::new(MemStore::new());
        let a = Address::from_low_u64(1);
        let b = Address::from_low_u64(2);
        c.update_account(&a, &AccountUpdate::plain(1, u(10), empty_code_hash()));
        let only_a = c.commit();
        c.update_account(&b, &AccountUpdate::plain(1, u(20), empty_code_hash()));
        let both = c.commit();
        assert_ne!(only_a, both);
        c.delete_account(&b);
        assert_eq!(c.commit(), only_a);
        assert!(c.account(&b).is_none());
    }

    #[test]
    fn reset_storage_discards_old_slots() {
        let mut c = StateCommitter::new(MemStore::new());
        let addr = Address::from_low_u64(9);
        let mut up = AccountUpdate::plain(1, u(1), empty_code_hash());
        up.storage.push((u(5), u(55)));
        c.update_account(&addr, &up);
        c.commit();

        // Re-create the account with different storage; slot 5 must not
        // leak through.
        let mut fresh = AccountUpdate::plain(1, u(1), empty_code_hash());
        fresh.reset_storage = true;
        fresh.storage.push((u(6), u(66)));
        c.update_account(&addr, &fresh);
        c.commit();
        assert_eq!(c.storage_value(&addr, u(5)), U256::ZERO);
        assert_eq!(c.storage_value(&addr, u(6)), u(66));
    }

    #[test]
    fn commit_resumes_from_synced_store_root() {
        let mut store = MemStore::new();
        let addr = Address::from_low_u64(3);
        let root = {
            let mut c = StateCommitter::new(store.clone());
            let mut up = AccountUpdate::plain(1, u(77), empty_code_hash());
            up.storage.push((u(1), u(2)));
            c.update_account(&addr, &up);
            let root = c.persist().unwrap();
            store = c.store().clone();
            root
        };
        let mut reopened = StateCommitter::new(store);
        assert_eq!(reopened.commit(), root);
        assert_eq!(reopened.storage_value(&addr, u(1)), u(2));
        assert_eq!(reopened.account(&addr).unwrap().balance, u(77));
    }
}
