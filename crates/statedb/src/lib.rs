//! Authenticated state commitment for the MTPU reproduction: an
//! Ethereum-style Merkle Patricia Trie with incremental roots, a bounded
//! node cache, and pluggable persistence.
//!
//! The paper's execution pipeline validates blocks against a
//! *commitment* to post-state; this crate supplies that commitment as
//! the canonical secure MPT so a single 32-byte root authenticates every
//! account and storage slot. The layers, bottom-up:
//!
//! * [`nibbles`] — hex-prefix path encoding (yellow paper appendix C);
//! * [`Node`]/[`Link`] — the three node kinds and their RLP codec, with
//!   sub-32-byte children inlined in their parent;
//! * [`NodeStore`] — hash-addressed persistence: [`MemStore`] for
//!   ephemeral runs, [`FileStore`] (append-only log + manifest) so a
//!   chain survives restart;
//! * [`NodeCache`] — bounded FIFO cache of decoded nodes in front of the
//!   store;
//! * [`Trie`] over a [`NodeDb`] — get/insert/remove plus **incremental**
//!   [`Trie::commit`]: between commits the root is a hash link, mutations
//!   splice in-memory nodes along touched paths only, and commit
//!   re-hashes exactly those dirty paths ([`TrieStats`] counts the work);
//! * [`StateCommitter`] — the secure account/storage layout
//!   (`keccak(address)` keys, `rlp([nonce, balance, storage_root,
//!   code_hash])` leaves, per-account storage tries).
//!
//! Telemetry: when the global `mtpu-telemetry` registry is enabled the
//! trie mirrors its work counters as `statedb.*` metrics; disabled, each
//! site costs one relaxed atomic load, per the workspace contract.

pub mod cache;
pub mod committer;
pub mod nibbles;
pub mod node;
pub mod obs;
pub mod store;
pub mod trie;

pub use cache::{BoundedMemo, NodeCache, DEFAULT_CACHE_CAPACITY};
pub use committer::{empty_code_hash, AccountRecord, AccountUpdate, StateCommitter};
pub use node::{Link, Node, NodeError};
pub use store::{FileStore, MemStore, NodeStore};
pub use trie::{empty_root, NodeBatch, NodeDb, NodeSink, Trie, TrieStats};
