//! Nibble paths and the yellow-paper hex-prefix encoding (Appendix C).
//!
//! Trie keys are traversed half a byte at a time; leaf and extension
//! nodes store their path compactly as bytes with a flag nibble that
//! records (a) whether the path has odd length and (b) whether the node
//! is a leaf (path terminates) or an extension.

/// Expands `bytes` into one nibble (0..16) per element, high nibble
/// first.
pub fn to_nibbles(bytes: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(bytes.len() * 2);
    for &b in bytes {
        out.push(b >> 4);
        out.push(b & 0x0f);
    }
    out
}

/// Hex-prefix encodes a nibble path. `is_leaf` sets the terminator flag.
pub fn hp_encode(nibbles: &[u8], is_leaf: bool) -> Vec<u8> {
    let mut flag = if is_leaf { 0x20u8 } else { 0x00 };
    let mut out = Vec::with_capacity(1 + nibbles.len() / 2);
    let rest = if nibbles.len() % 2 == 1 {
        flag |= 0x10 | nibbles[0];
        &nibbles[1..]
    } else {
        nibbles
    };
    out.push(flag);
    for pair in rest.chunks(2) {
        out.push((pair[0] << 4) | pair[1]);
    }
    out
}

/// Decodes a hex-prefix path back into `(nibbles, is_leaf)`.
///
/// Returns `None` for an empty input or an unknown flag nibble.
pub fn hp_decode(bytes: &[u8]) -> Option<(Vec<u8>, bool)> {
    let (&first, rest) = bytes.split_first()?;
    let flags = first >> 4;
    if flags > 3 {
        return None;
    }
    let is_leaf = flags & 0x2 != 0;
    let mut nibbles = Vec::with_capacity(rest.len() * 2 + 1);
    if flags & 0x1 != 0 {
        nibbles.push(first & 0x0f);
    } else if first & 0x0f != 0 {
        return None; // padding nibble must be zero on even paths
    }
    for &b in rest {
        nibbles.push(b >> 4);
        nibbles.push(b & 0x0f);
    }
    Some((nibbles, is_leaf))
}

/// Length of the longest common prefix of two nibble slices.
pub fn common_prefix(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nibble_expansion() {
        assert_eq!(to_nibbles(&[0xab, 0x01]), vec![0xa, 0xb, 0x0, 0x1]);
        assert!(to_nibbles(&[]).is_empty());
    }

    #[test]
    fn hex_prefix_yellow_paper_cases() {
        // Even extension.
        assert_eq!(
            hp_encode(&[0x1, 0x2, 0x3, 0x4], false),
            vec![0x00, 0x12, 0x34]
        );
        // Odd extension.
        assert_eq!(hp_encode(&[0x1, 0x2, 0x3], false), vec![0x11, 0x23]);
        // Even leaf.
        assert_eq!(hp_encode(&[0x1, 0x2], true), vec![0x20, 0x12]);
        // Odd leaf.
        assert_eq!(hp_encode(&[0xf], true), vec![0x3f]);
        // Empty paths.
        assert_eq!(hp_encode(&[], false), vec![0x00]);
        assert_eq!(hp_encode(&[], true), vec![0x20]);
    }

    #[test]
    fn hex_prefix_round_trips() {
        for len in 0..8 {
            for leaf in [false, true] {
                let nibbles: Vec<u8> = (0..len).map(|i| (i * 3 + 1) % 16).collect();
                let enc = hp_encode(&nibbles, leaf);
                assert_eq!(hp_decode(&enc), Some((nibbles.clone(), leaf)));
            }
        }
    }

    #[test]
    fn hex_prefix_rejects_garbage() {
        assert_eq!(hp_decode(&[]), None);
        assert_eq!(hp_decode(&[0x40]), None); // unknown flag
        assert_eq!(hp_decode(&[0x01]), None); // nonzero padding on even path
    }

    #[test]
    fn common_prefix_lengths() {
        assert_eq!(common_prefix(&[1, 2, 3], &[1, 2, 4]), 2);
        assert_eq!(common_prefix(&[1], &[]), 0);
        assert_eq!(common_prefix(&[5, 6], &[5, 6]), 2);
    }
}
