//! Trie node representation and its canonical RLP codec.
//!
//! The three Ethereum node kinds — leaf, extension and branch — encode to
//! RLP lists; a node whose encoding is shorter than 32 bytes is embedded
//! *inline* in its parent, otherwise the parent stores its keccak hash
//! and the raw bytes live in the [`crate::store::NodeStore`].

use crate::nibbles::{hp_decode, hp_encode};
use mtpu_primitives::rlp::{self, Item};
use mtpu_primitives::B256;
use std::fmt;

/// A reference from a node to one of its children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Link {
    /// A committed child, addressed by the keccak hash of its encoding.
    Hash(B256),
    /// An in-memory child: freshly mutated, or decoded from an inline
    /// (sub-32-byte) embedding in its parent.
    Node(Box<Node>),
}

/// One Merkle Patricia Trie node.
// Branch is by far the most common variant in a populated trie, so its
// 16-slot array stays inline rather than behind another allocation.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Terminates a key: remaining path + value.
    Leaf {
        /// Remaining key nibbles (may be empty).
        path: Vec<u8>,
        /// Stored value (never empty; empty insert means delete).
        value: Vec<u8>,
    },
    /// Compresses a shared path segment above a branch.
    Extension {
        /// Shared key nibbles (never empty).
        path: Vec<u8>,
        /// The node the segment leads to.
        child: Link,
    },
    /// A 16-way fan-out plus an optional value for keys ending here.
    Branch {
        /// One slot per next-nibble.
        children: [Option<Link>; 16],
        /// Value of the key that terminates at this node, if any.
        value: Option<Vec<u8>>,
    },
}

/// Error produced while decoding a stored node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeError {
    /// Underlying RLP was malformed.
    Rlp(rlp::DecodeError),
    /// RLP was valid but not a 2- or 17-item trie node shape.
    Shape(&'static str),
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::Rlp(e) => write!(f, "invalid node rlp: {e}"),
            NodeError::Shape(what) => write!(f, "invalid node shape: {what}"),
        }
    }
}

impl std::error::Error for NodeError {}

impl Node {
    /// Encodes this node as an RLP item. In-memory children are encoded
    /// recursively; children whose encoding reaches 32 bytes are replaced
    /// by their hash via `commit_child` (which is expected to persist
    /// them and count the hash).
    pub fn to_item(&self, commit_child: &mut dyn FnMut(&Node) -> Item) -> Item {
        match self {
            Node::Leaf { path, value } => Item::List(vec![
                Item::bytes(hp_encode(path, true)),
                Item::bytes(value.clone()),
            ]),
            Node::Extension { path, child } => Item::List(vec![
                Item::bytes(hp_encode(path, false)),
                link_item(child, commit_child),
            ]),
            Node::Branch { children, value } => {
                let mut items = Vec::with_capacity(17);
                for child in children.iter() {
                    items.push(match child {
                        Some(l) => link_item(l, commit_child),
                        None => Item::bytes(Vec::new()),
                    });
                }
                items.push(Item::bytes(value.clone().unwrap_or_default()));
                Item::List(items)
            }
        }
    }

    /// Decodes a node from its raw RLP bytes.
    ///
    /// # Errors
    ///
    /// Returns [`NodeError`] for malformed RLP or a non-node shape.
    pub fn decode(raw: &[u8]) -> Result<Node, NodeError> {
        let item = rlp::decode(raw).map_err(NodeError::Rlp)?;
        Node::from_item(&item)
    }

    /// Decodes a node from an already-parsed RLP item (used for inline
    /// children, which are lists embedded in the parent's encoding).
    pub fn from_item(item: &Item) -> Result<Node, NodeError> {
        let items = item.as_list().ok_or(NodeError::Shape("expected list"))?;
        match items.len() {
            2 => {
                let hp = items[0]
                    .as_bytes()
                    .ok_or(NodeError::Shape("path must be bytes"))?;
                let (path, is_leaf) =
                    hp_decode(hp).ok_or(NodeError::Shape("bad hex-prefix path"))?;
                if is_leaf {
                    let value = items[1]
                        .as_bytes()
                        .ok_or(NodeError::Shape("leaf value must be bytes"))?;
                    Ok(Node::Leaf {
                        path,
                        value: value.to_vec(),
                    })
                } else {
                    Ok(Node::Extension {
                        path,
                        child: decode_link(&items[1])?
                            .ok_or(NodeError::Shape("extension child missing"))?,
                    })
                }
            }
            17 => {
                let mut children: [Option<Link>; 16] = Default::default();
                for (i, slot) in children.iter_mut().enumerate() {
                    *slot = decode_link(&items[i])?;
                }
                let value = items[16]
                    .as_bytes()
                    .ok_or(NodeError::Shape("branch value must be bytes"))?;
                Ok(Node::Branch {
                    children,
                    value: if value.is_empty() {
                        None
                    } else {
                        Some(value.to_vec())
                    },
                })
            }
            _ => Err(NodeError::Shape("node list must have 2 or 17 items")),
        }
    }
}

fn link_item(link: &Link, commit_child: &mut dyn FnMut(&Node) -> Item) -> Item {
    match link {
        Link::Hash(h) => Item::bytes(h.as_bytes().to_vec()),
        Link::Node(n) => commit_child(n),
    }
}

fn decode_link(item: &Item) -> Result<Option<Link>, NodeError> {
    match item {
        Item::Bytes(b) if b.is_empty() => Ok(None),
        Item::Bytes(b) if b.len() == 32 => {
            let mut h = [0u8; 32];
            h.copy_from_slice(b);
            Ok(Some(Link::Hash(B256::new(h))))
        }
        Item::Bytes(_) => Err(NodeError::Shape("child ref must be empty or 32 bytes")),
        Item::List(_) => Ok(Some(Link::Node(Box::new(Node::from_item(item)?)))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode_plain(node: &Node) -> Vec<u8> {
        // Children in these tests are hashes, so commit_child never fires.
        rlp::encode(&node.to_item(&mut |_| unreachable!("no inline children")))
    }

    #[test]
    fn leaf_round_trips() {
        let n = Node::Leaf {
            path: vec![0xa, 0xb, 0xc],
            value: b"value".to_vec(),
        };
        let raw = encode_plain(&n);
        assert_eq!(Node::decode(&raw).unwrap(), n);
    }

    #[test]
    fn extension_with_hash_child_round_trips() {
        let n = Node::Extension {
            path: vec![0x1, 0x2],
            child: Link::Hash(B256::keccak(b"child")),
        };
        let raw = encode_plain(&n);
        assert_eq!(Node::decode(&raw).unwrap(), n);
    }

    #[test]
    fn branch_with_inline_leaf_round_trips() {
        let leaf = Node::Leaf {
            path: vec![0x3],
            value: vec![0x7f],
        };
        let mut children: [Option<Link>; 16] = Default::default();
        children[4] = Some(Link::Node(Box::new(leaf)));
        children[9] = Some(Link::Hash(B256::keccak(b"big")));
        let n = Node::Branch {
            children,
            value: Some(vec![0x01]),
        };
        // The inline leaf encodes under 32 bytes, so it embeds directly.
        let raw =
            rlp::encode(&n.to_item(&mut |child| {
                child.to_item(&mut |_| unreachable!("leaf has no children"))
            }));
        assert_eq!(Node::decode(&raw).unwrap(), n);
    }

    #[test]
    fn rejects_malformed() {
        assert!(matches!(
            Node::decode(&[0x80]),
            Err(NodeError::Shape("expected list"))
        ));
        let three = rlp::encode_list(&[Item::uint(1), Item::uint(2), Item::uint(3)]);
        assert!(matches!(Node::decode(&three), Err(NodeError::Shape(_))));
        assert!(matches!(Node::decode(&[0xff]), Err(NodeError::Rlp(_))));
    }
}
