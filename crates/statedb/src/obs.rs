//! Telemetry wiring for the state trie: cached handles into the global
//! [`mtpu_telemetry`] registry.
//!
//! Same contract as the other instrumented crates: every recording site
//! checks [`mtpu_telemetry::enabled`] first, so a disabled registry costs
//! one relaxed atomic load per event. The per-instance
//! [`crate::trie::TrieStats`] counters are *not* gated — acceptance
//! checks rely on them regardless of telemetry state.

use mtpu_telemetry::{Counter, Histogram};
use std::sync::OnceLock;

/// Cached handles for the trie's metrics.
pub struct StatedbMetrics {
    /// Node-cache hits (`statedb.cache.hit`).
    pub cache_hit: Counter,
    /// Node-cache misses (`statedb.cache.miss`).
    pub cache_miss: Counter,
    /// Node-cache evictions (`statedb.cache.evict`).
    pub cache_evict: Counter,
    /// Nodes encoded + keccak-hashed during commits
    /// (`statedb.node.hashed`) — the incremental-commit work metric.
    pub nodes_hashed: Counter,
    /// Encoded nodes written to the backing store
    /// (`statedb.node.stored`).
    pub nodes_stored: Counter,
    /// Nodes decoded from the backing store (`statedb.node.loaded`).
    pub nodes_loaded: Counter,
    /// Root commits performed (`statedb.commit`).
    pub commits: Counter,
    /// Nodes hashed per commit (`statedb.commit.nodes`), the dirty-path
    /// size distribution.
    pub commit_nodes: Histogram,
    /// Storage subtries committed on worker threads
    /// (`statedb.parallel.subtries`).
    pub par_subtries: Counter,
    /// Nodes merged into the store from worker batches
    /// (`statedb.parallel.batch_nodes`).
    pub par_batch_nodes: Counter,
    /// Cumulative worker-thread hashing time
    /// (`statedb.parallel.workers_busy_ns`) — compare against the commit
    /// span's wall time to read parallel efficiency.
    pub par_busy_ns: Counter,
}

/// The process-wide cached handle set.
pub fn metrics() -> &'static StatedbMetrics {
    static METRICS: OnceLock<StatedbMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let reg = mtpu_telemetry::global();
        StatedbMetrics {
            cache_hit: reg.counter("statedb.cache.hit"),
            cache_miss: reg.counter("statedb.cache.miss"),
            cache_evict: reg.counter("statedb.cache.evict"),
            nodes_hashed: reg.counter("statedb.node.hashed"),
            nodes_stored: reg.counter("statedb.node.stored"),
            nodes_loaded: reg.counter("statedb.node.loaded"),
            commits: reg.counter("statedb.commit"),
            commit_nodes: reg.histogram("statedb.commit.nodes"),
            par_subtries: reg.counter("statedb.parallel.subtries"),
            par_batch_nodes: reg.counter("statedb.parallel.batch_nodes"),
            par_busy_ns: reg.counter("statedb.parallel.workers_busy_ns"),
        }
    })
}
