//! Pluggable node persistence: hash-addressed storage of encoded trie
//! nodes.
//!
//! Two backends ship with the crate:
//!
//! * [`MemStore`] — a plain in-process map, for tests and ephemeral
//!   simulation;
//! * [`FileStore`] — an append-only node log plus a manifest, so a chain
//!   survives process restart: on open the manifest names the committed
//!   log length and the last synced root, and the log prefix is replayed
//!   into an in-memory index.
//!
//! Both stores are *archive* stores: nodes are never deleted, so any
//! historical root that was ever committed remains readable.

use mtpu_primitives::{keccak256, B256};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Hash-addressed storage of encoded trie nodes.
pub trait NodeStore {
    /// The raw encoding of the node with this hash, if present.
    fn get(&self, hash: &B256) -> Option<Vec<u8>>;

    /// Stores one encoded node under its hash. Idempotent: storing the
    /// same hash twice is a no-op (content-addressed data never changes).
    fn put(&mut self, hash: B256, raw: Vec<u8>);

    /// Stores a batch of nodes, preserving the slice order — for
    /// append-only backends the log bytes must equal the same sequence
    /// of [`NodeStore::put`] calls. Backends may override this to
    /// amortise per-record overhead.
    fn put_batch(&mut self, nodes: Vec<(B256, Vec<u8>)>) {
        for (hash, raw) in nodes {
            self.put(hash, raw);
        }
    }

    /// Number of distinct nodes stored.
    fn node_count(&self) -> usize;

    /// The root recorded by the last [`NodeStore::sync`], if any — how a
    /// reopened store tells the committer where the trie left off.
    fn root(&self) -> Option<B256>;

    /// Durably records `root` (and, for persistent backends, flushes all
    /// nodes written so far).
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error; in-memory stores never fail.
    fn sync(&mut self, root: B256) -> std::io::Result<()>;
}

/// An in-process, non-persistent node store.
#[derive(Debug, Clone, Default)]
pub struct MemStore {
    nodes: HashMap<B256, Vec<u8>>,
    root: Option<B256>,
}

impl MemStore {
    /// An empty store.
    pub fn new() -> Self {
        MemStore::default()
    }
}

impl NodeStore for MemStore {
    fn get(&self, hash: &B256) -> Option<Vec<u8>> {
        self.nodes.get(hash).cloned()
    }

    fn put(&mut self, hash: B256, raw: Vec<u8>) {
        self.nodes.entry(hash).or_insert(raw);
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn root(&self) -> Option<B256> {
        self.root
    }

    fn sync(&mut self, root: B256) -> std::io::Result<()> {
        self.root = Some(root);
        Ok(())
    }
}

/// Manifest schema line; bump when the on-disk layout changes.
const MANIFEST_SCHEMA: &str = "mtpu-statedb/v1";
const LOG_FILE: &str = "nodes.log";
const MANIFEST_FILE: &str = "MANIFEST";

/// A file-backed archive store: an append-only log of `[u32 BE length]
/// [raw node bytes]` records under `dir/nodes.log`, plus `dir/MANIFEST`
/// naming the schema, the committed log length and the last synced root.
///
/// Appends past the manifest's committed length are invisible to a
/// reopen until the next [`NodeStore::sync`] — a crash mid-block simply
/// truncates back to the last synced root (the manifest is replaced
/// atomically via a temp file + rename).
#[derive(Debug)]
pub struct FileStore {
    dir: PathBuf,
    log: File,
    /// Bytes of the log that the manifest vouches for.
    committed_len: u64,
    /// Bytes written to the log so far (committed + pending).
    written_len: u64,
    index: HashMap<B256, Vec<u8>>,
    root: Option<B256>,
}

impl FileStore {
    /// Opens (or creates) a store in `dir`, replaying the committed log
    /// prefix into memory.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, on a manifest with an unknown schema, and on
    /// a log record whose bytes do not hash to a well-formed record
    /// boundary (a torn write *inside* the committed prefix).
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<FileStore> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let (committed_len, root) = read_manifest(&dir.join(MANIFEST_FILE))?;

        let mut log = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(dir.join(LOG_FILE))?;
        let mut bytes = Vec::new();
        log.read_to_end(&mut bytes)?;
        if (bytes.len() as u64) < committed_len {
            return Err(corrupt(format!(
                "log shorter than manifest: {} < {committed_len}",
                bytes.len()
            )));
        }

        let mut index = HashMap::new();
        let mut pos = 0usize;
        while (pos as u64) < committed_len {
            let Some(len_bytes) = bytes.get(pos..pos + 4) else {
                return Err(corrupt("record header crosses committed boundary"));
            };
            let len = u32::from_be_bytes(len_bytes.try_into().expect("4 bytes")) as usize;
            let Some(raw) = bytes.get(pos + 4..pos + 4 + len) else {
                return Err(corrupt("record payload crosses committed boundary"));
            };
            index.insert(B256::new(keccak256(raw)), raw.to_vec());
            pos += 4 + len;
        }
        if pos as u64 != committed_len {
            return Err(corrupt("committed length is not a record boundary"));
        }

        // Position appends right after the committed prefix; a stale
        // uncommitted tail is overwritten.
        log.seek(SeekFrom::Start(committed_len))?;
        Ok(FileStore {
            dir,
            log,
            committed_len,
            written_len: committed_len,
            index,
            root,
        })
    }

    /// Directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Bytes of the node log vouched for by the manifest.
    pub fn committed_len(&self) -> u64 {
        self.committed_len
    }
}

fn corrupt(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

fn read_manifest(path: &Path) -> std::io::Result<(u64, Option<B256>)> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((0, None)),
        Err(e) => return Err(e),
    };
    let mut lines = text.lines();
    match lines.next() {
        Some(MANIFEST_SCHEMA) => {}
        other => return Err(corrupt(format!("unknown manifest schema {other:?}"))),
    }
    let len: u64 = lines
        .next()
        .and_then(|l| l.parse().ok())
        .ok_or_else(|| corrupt("manifest missing committed length"))?;
    let root = match lines.next() {
        Some("-") | None => None,
        Some(hex) => Some(
            hex.parse::<B256>()
                .map_err(|_| corrupt("manifest root is not 32-byte hex"))?,
        ),
    };
    Ok((len, root))
}

impl NodeStore for FileStore {
    fn get(&self, hash: &B256) -> Option<Vec<u8>> {
        self.index.get(hash).cloned()
    }

    fn put(&mut self, hash: B256, raw: Vec<u8>) {
        if self.index.contains_key(&hash) {
            return;
        }
        let len = raw.len() as u32;
        // Buffered through the OS; durability comes from sync().
        self.log
            .write_all(&len.to_be_bytes())
            .and_then(|()| self.log.write_all(&raw))
            .expect("append to node log");
        self.written_len += 4 + raw.len() as u64;
        self.index.insert(hash, raw);
    }

    fn put_batch(&mut self, nodes: Vec<(B256, Vec<u8>)>) {
        // One write_all for the whole batch; the log bytes are identical
        // to the equivalent sequence of put() calls.
        let mut buf = Vec::new();
        for (hash, raw) in nodes {
            if self.index.contains_key(&hash) {
                continue;
            }
            buf.extend_from_slice(&(raw.len() as u32).to_be_bytes());
            buf.extend_from_slice(&raw);
            self.index.insert(hash, raw);
        }
        if buf.is_empty() {
            return;
        }
        self.log.write_all(&buf).expect("append to node log");
        self.written_len += buf.len() as u64;
    }

    fn node_count(&self) -> usize {
        self.index.len()
    }

    fn root(&self) -> Option<B256> {
        self.root
    }

    fn sync(&mut self, root: B256) -> std::io::Result<()> {
        self.log.sync_data()?;
        let manifest = format!("{MANIFEST_SCHEMA}\n{}\n{root}\n", self.written_len);
        let tmp = self.dir.join("MANIFEST.tmp");
        std::fs::write(&tmp, manifest)?;
        std::fs::rename(&tmp, self.dir.join(MANIFEST_FILE))?;
        self.committed_len = self.written_len;
        self.root = Some(root);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("mtpu-statedb-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn node(data: &[u8]) -> (B256, Vec<u8>) {
        (B256::new(keccak256(data)), data.to_vec())
    }

    #[test]
    fn mem_store_round_trips() {
        let mut s = MemStore::new();
        let (h, raw) = node(b"hello");
        assert!(s.get(&h).is_none());
        s.put(h, raw.clone());
        assert_eq!(s.get(&h), Some(raw));
        assert_eq!(s.node_count(), 1);
        s.sync(h).unwrap();
        assert_eq!(s.root(), Some(h));
    }

    #[test]
    fn file_store_survives_reopen() {
        let dir = temp_dir("reopen");
        let (h1, r1) = node(b"alpha");
        let (h2, r2) = node(b"beta");
        {
            let mut s = FileStore::open(&dir).unwrap();
            assert_eq!(s.node_count(), 0);
            assert_eq!(s.root(), None);
            s.put(h1, r1.clone());
            s.put(h2, r2.clone());
            s.sync(h2).unwrap();
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.node_count(), 2);
        assert_eq!(s.get(&h1), Some(r1));
        assert_eq!(s.get(&h2), Some(r2));
        assert_eq!(s.root(), Some(h2));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unsynced_tail_is_dropped_on_reopen() {
        let dir = temp_dir("tail");
        let (h1, r1) = node(b"kept");
        let (h2, r2) = node(b"lost");
        {
            let mut s = FileStore::open(&dir).unwrap();
            s.put(h1, r1.clone());
            s.sync(h1).unwrap();
            s.put(h2, r2); // never synced
        }
        let s = FileStore::open(&dir).unwrap();
        assert_eq!(s.get(&h1), Some(r1));
        assert_eq!(s.get(&h2), None, "uncommitted tail must vanish");
        assert_eq!(s.root(), Some(h1));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_manifest_is_rejected() {
        let dir = temp_dir("badmanifest");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(MANIFEST_FILE), "someone-else/v9\n0\n-\n").unwrap();
        assert!(FileStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncated_log_is_rejected() {
        let dir = temp_dir("shortlog");
        {
            let mut s = FileStore::open(&dir).unwrap();
            let (h, r) = node(b"data");
            s.put(h, r);
            s.sync(h).unwrap();
        }
        // Chop bytes off the committed prefix.
        let log = dir.join(LOG_FILE);
        let bytes = std::fs::read(&log).unwrap();
        std::fs::write(&log, &bytes[..bytes.len() - 1]).unwrap();
        assert!(FileStore::open(&dir).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
