//! The Merkle Patricia Trie proper: get/insert/remove over a
//! [`NodeDb`], with **incremental** root commitment.
//!
//! A [`Trie`] holds its root as a [`Link`]: after [`Trie::commit`] the
//! root is a hash reference into the store; mutations splice fresh
//! in-memory nodes along the touched path only, leaving every untouched
//! subtree as a hash link. The next commit therefore re-encodes and
//! re-hashes exactly the dirty paths — O(dirty · depth) instead of
//! O(state) — which is the property the per-instance [`TrieStats`]
//! counters (and the mirrored `statedb.*` telemetry) let callers assert.

use crate::cache::NodeCache;
use crate::nibbles::{common_prefix, to_nibbles};
use crate::node::{Link, Node};
use crate::store::NodeStore;
use mtpu_primitives::rlp::{self, Item};
use mtpu_primitives::B256;
use std::sync::OnceLock;
use std::time::Instant;

/// Fewest dirty branch children worth fanning out across threads in
/// [`Trie::commit_parallel`]; below this the spawn cost dominates.
const PAR_MIN_CHILDREN: usize = 4;

/// Root hash of the empty trie: `keccak(rlp(""))`.
pub fn empty_root() -> B256 {
    static ROOT: OnceLock<B256> = OnceLock::new();
    *ROOT.get_or_init(|| B256::keccak(&rlp::encode(&Item::bytes(Vec::new()))))
}

/// Lifetime work counters of one [`NodeDb`] (never gated on telemetry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrieStats {
    /// Nodes keccak-hashed (and stored) by commits — the incremental
    /// commit's work metric.
    pub nodes_hashed: u64,
    /// Nodes decoded from the backing store (cache misses that hit disk
    /// or the in-memory map).
    pub nodes_loaded: u64,
    /// Node-cache hits.
    pub cache_hits: u64,
    /// Node-cache misses.
    pub cache_misses: u64,
    /// Node-cache evictions.
    pub cache_evictions: u64,
    /// Root commits performed.
    pub commits: u64,
}

/// Receives the nodes a commit hashes, in bottom-up traversal order.
///
/// [`NodeDb`] sinks straight into its store; [`NodeBatch`] buffers them
/// so a worker thread can hash a subtree without touching the shared
/// store, to be merged later via [`NodeDb::absorb_batch`]. The order in
/// which nodes reach a sink is a pure function of the trie contents
/// (bottom-up, children before parents, branch children in nibble
/// order), which is what makes the parallel merge deterministic.
pub trait NodeSink {
    /// Accepts one freshly encoded and hashed node.
    fn sink_node(&mut self, hash: B256, raw: Vec<u8>, node: &Node);
}

/// An ordered buffer of committed nodes produced off-thread by
/// [`Trie::commit_into`], merged into the shared [`NodeDb`] with
/// [`NodeDb::absorb_batch`].
#[derive(Debug, Default)]
pub struct NodeBatch {
    nodes: Vec<(B256, Vec<u8>, Node)>,
}

impl NodeBatch {
    /// An empty batch.
    pub fn new() -> NodeBatch {
        NodeBatch::default()
    }

    /// Nodes buffered so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when no nodes are buffered.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

impl NodeSink for NodeBatch {
    fn sink_node(&mut self, hash: B256, raw: Vec<u8>, node: &Node) {
        self.nodes.push((hash, raw, node.clone()));
    }
}

/// A node store wrapped with the decoded-node cache and work counters;
/// shared by every trie (account trie and per-account storage tries)
/// committing into the same backend.
#[derive(Debug)]
pub struct NodeDb<S: NodeStore> {
    store: S,
    cache: NodeCache,
    nodes_hashed: u64,
    nodes_loaded: u64,
    commits: u64,
}

impl<S: NodeStore> NodeDb<S> {
    /// Wraps `store` with the default-capacity cache.
    pub fn new(store: S) -> Self {
        NodeDb::with_cache(store, NodeCache::default())
    }

    /// Wraps `store` with an explicitly sized cache.
    pub fn with_cache(store: S, cache: NodeCache) -> Self {
        NodeDb {
            store,
            cache,
            nodes_hashed: 0,
            nodes_loaded: 0,
            commits: 0,
        }
    }

    /// Borrows the backing store.
    pub fn store(&self) -> &S {
        &self.store
    }

    /// Mutably borrows the backing store.
    pub fn store_mut(&mut self) -> &mut S {
        &mut self.store
    }

    /// Consumes the db, returning the backing store.
    pub fn into_store(self) -> S {
        self.store
    }

    /// Work-counter snapshot (cache counters folded in).
    pub fn stats(&self) -> TrieStats {
        let (cache_hits, cache_misses, cache_evictions) = self.cache.counters();
        TrieStats {
            nodes_hashed: self.nodes_hashed,
            nodes_loaded: self.nodes_loaded,
            cache_hits,
            cache_misses,
            cache_evictions,
            commits: self.commits,
        }
    }

    /// Durably records `root` in the backing store (see
    /// [`NodeStore::sync`]).
    ///
    /// # Errors
    ///
    /// Propagates the store's I/O error.
    pub fn sync(&mut self, root: B256) -> std::io::Result<()> {
        self.store.sync(root)
    }

    fn load_node(&mut self, hash: B256) -> Node {
        if let Some(n) = self.cache.get(&hash) {
            return n;
        }
        let raw = self
            .store
            .get(&hash)
            .unwrap_or_else(|| panic!("missing trie node {hash}"));
        self.nodes_loaded += 1;
        if mtpu_telemetry::enabled() {
            crate::obs::metrics().nodes_loaded.inc();
        }
        let node = Node::decode(&raw).expect("stored trie node decodes");
        self.cache.put(hash, node.clone());
        node
    }

    fn take_node(&mut self, link: Link) -> Node {
        match link {
            Link::Node(boxed) => *boxed,
            Link::Hash(h) => self.load_node(h),
        }
    }

    fn store_node(&mut self, hash: B256, raw: Vec<u8>, node: &Node) {
        self.nodes_hashed += 1;
        self.store.put(hash, raw);
        self.cache.put(hash, node.clone());
        if mtpu_telemetry::enabled() {
            let m = crate::obs::metrics();
            m.nodes_hashed.inc();
            m.nodes_stored.inc();
        }
    }

    /// Merges a worker-produced [`NodeBatch`] into the store and cache,
    /// preserving the batch's insertion order — callers absorb batches in
    /// job order, so the store sees the exact byte sequence a sequential
    /// commit of the same tries would have appended.
    pub fn absorb_batch(&mut self, batch: NodeBatch) {
        let n = batch.nodes.len() as u64;
        if n == 0 {
            return;
        }
        self.nodes_hashed += n;
        let mut raws = Vec::with_capacity(batch.nodes.len());
        for (hash, raw, node) in batch.nodes {
            self.cache.put(hash, node);
            raws.push((hash, raw));
        }
        self.store.put_batch(raws);
        if mtpu_telemetry::enabled() {
            let m = crate::obs::metrics();
            m.nodes_hashed.add(n);
            m.nodes_stored.add(n);
            m.par_batch_nodes.add(n);
        }
    }
}

impl<S: NodeStore> NodeSink for NodeDb<S> {
    fn sink_node(&mut self, hash: B256, raw: Vec<u8>, node: &Node) {
        self.store_node(hash, raw, node);
    }
}

/// A Merkle Patricia Trie rooted at one link.
///
/// Keys are raw byte strings (callers wanting the *secure* trie hash
/// them first, as [`crate::committer::StateCommitter`] does); values are
/// non-empty byte strings — inserting an empty value removes the key,
/// matching canonical Ethereum semantics.
///
/// ```
/// use mtpu_statedb::{MemStore, NodeDb, Trie};
///
/// let mut db = NodeDb::new(MemStore::new());
/// let mut trie = Trie::empty();
/// trie.insert(&mut db, b"dog", b"puppy");
/// assert_eq!(trie.get(&mut db, b"dog"), Some(b"puppy".to_vec()));
/// let root = trie.commit(&mut db);
///
/// // Reopen from the root hash alone.
/// let reopened = Trie::from_root(root);
/// assert_eq!(reopened.get(&mut db, b"dog"), Some(b"puppy".to_vec()));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trie {
    root: Option<Link>,
}

impl Trie {
    /// The empty trie.
    pub fn empty() -> Trie {
        Trie { root: None }
    }

    /// A trie rooted at a previously committed hash.
    pub fn from_root(root: B256) -> Trie {
        if root == empty_root() {
            Trie::empty()
        } else {
            Trie {
                root: Some(Link::Hash(root)),
            }
        }
    }

    /// `true` when the trie holds no keys.
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// `true` when uncommitted mutations are pending.
    pub fn is_dirty(&self) -> bool {
        matches!(self.root, Some(Link::Node(_)))
    }

    /// Looks up `key`.
    pub fn get<S: NodeStore>(&self, db: &mut NodeDb<S>, key: &[u8]) -> Option<Vec<u8>> {
        let root = self.root.as_ref()?;
        get_at(db, root, &to_nibbles(key))
    }

    /// Inserts `key` → `value`. An empty `value` removes the key.
    pub fn insert<S: NodeStore>(&mut self, db: &mut NodeDb<S>, key: &[u8], value: &[u8]) {
        if value.is_empty() {
            self.remove(db, key);
            return;
        }
        let root = self.root.take();
        self.root = Some(insert_at(db, root, &to_nibbles(key), value.to_vec()));
    }

    /// Removes `key` if present.
    pub fn remove<S: NodeStore>(&mut self, db: &mut NodeDb<S>, key: &[u8]) {
        // The removal rebuild assumes the key exists (it simplifies the
        // branch-collapse logic); a cheap pre-check keeps absent keys
        // from dirtying clean paths at all.
        if self.get(db, key).is_none() {
            return;
        }
        let root = self.root.take().expect("get() found the key");
        self.root = remove_at(db, root, &to_nibbles(key));
    }

    /// Hashes every dirty path, writes the affected nodes to the store,
    /// and returns the new root hash. Clean tries return their root
    /// without touching the store.
    pub fn commit<S: NodeStore>(&mut self, db: &mut NodeDb<S>) -> B256 {
        let hashed_before = db.nodes_hashed;
        let root = self.commit_into(db);
        db.commits += 1;
        if mtpu_telemetry::enabled() {
            let m = crate::obs::metrics();
            m.commits.inc();
            m.commit_nodes.record(db.nodes_hashed - hashed_before);
        }
        root
    }

    /// The commit core: hashes every dirty path into an arbitrary
    /// [`NodeSink`] and returns the root hash.
    ///
    /// Committing a dirty trie never *reads* the store — mutations only
    /// ever splice in-memory [`Link::Node`]s, and everything below a
    /// [`Link::Hash`] is already committed — so a worker thread can run
    /// this against a private [`NodeBatch`] with no access to the shared
    /// [`NodeDb`] at all. Unlike [`Trie::commit`] this does not bump the
    /// commits counter or record telemetry; wrappers do.
    pub fn commit_into<K: NodeSink>(&mut self, sink: &mut K) -> B256 {
        match &mut self.root {
            None => empty_root(),
            Some(Link::Hash(h)) => *h,
            Some(link) => {
                let Link::Node(node) = link else {
                    unreachable!("hash case handled above")
                };
                commit_children(sink, node);
                // The root node is always hashed and stored, even when
                // its encoding is shorter than 32 bytes.
                let item = encode_committed(node);
                let raw = rlp::encode(&item);
                let h = B256::keccak(&raw);
                sink.sink_node(h, raw, node);
                *link = Link::Hash(h);
                h
            }
        }
    }

    /// The root hash if the trie is clean, `None` while mutations are
    /// pending (commit first to learn the root).
    pub fn committed_root(&self) -> Option<B256> {
        match &self.root {
            None => Some(empty_root()),
            Some(Link::Hash(h)) => Some(*h),
            Some(Link::Node(_)) => None,
        }
    }

    /// Like [`Trie::commit`], but hashes dirty children of the root
    /// branch on up to `threads` scoped worker threads.
    ///
    /// Produces a store byte-stream — and therefore a root — identical
    /// to the serial commit: each worker hashes a contiguous run of
    /// dirty children (taken in nibble order) into a private
    /// [`NodeBatch`], the batches are absorbed in run order, and the
    /// root node is hashed last, which is exactly the serial traversal
    /// order. Falls back to [`Trie::commit`] when the fan-out is too
    /// small to pay for the spawns.
    pub fn commit_parallel<S: NodeStore>(&mut self, db: &mut NodeDb<S>, threads: usize) -> B256 {
        let fan_out = match &self.root {
            Some(Link::Node(node)) => match node.as_ref() {
                Node::Branch { children, .. } => children
                    .iter()
                    .flatten()
                    .filter(|c| matches!(c, Link::Node(_)))
                    .count(),
                _ => 0,
            },
            _ => 0,
        };
        if threads <= 1 || fan_out < PAR_MIN_CHILDREN {
            return self.commit(db);
        }
        let hashed_before = db.nodes_hashed;
        let mut busy_ns = 0u64;
        {
            let Some(Link::Node(node)) = &mut self.root else {
                unreachable!("fan_out > 0 implies a dirty root")
            };
            let Node::Branch { children, .. } = node.as_mut() else {
                unreachable!("fan_out > 0 implies a branch root")
            };
            let mut dirty: Vec<&mut Link> = children
                .iter_mut()
                .flatten()
                .filter(|c| matches!(c, Link::Node(_)))
                .collect();
            let workers = threads.min(dirty.len());
            let chunk = dirty.len().div_ceil(workers);
            let batches: Vec<NodeBatch> = std::thread::scope(|s| {
                let handles: Vec<_> = dirty
                    .as_mut_slice()
                    .chunks_mut(chunk)
                    .map(|links| {
                        s.spawn(move || {
                            let started = Instant::now();
                            let mut batch = NodeBatch::new();
                            for link in links.iter_mut() {
                                commit_link(&mut batch, link);
                            }
                            (batch, started.elapsed().as_nanos() as u64)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| {
                        let (batch, ns) = h.join().expect("commit worker panicked");
                        busy_ns += ns;
                        batch
                    })
                    .collect()
            });
            for batch in batches {
                db.absorb_batch(batch);
            }
        }
        // Children are now hash links (or sub-32-byte inlines); this
        // hashes and stores just the root node.
        let root = self.commit_into(db);
        db.commits += 1;
        if mtpu_telemetry::enabled() {
            let m = crate::obs::metrics();
            m.commits.inc();
            m.commit_nodes.record(db.nodes_hashed - hashed_before);
            m.par_busy_ns.add(busy_ns);
        }
        root
    }
}

/// Encodes a node whose oversized descendants are already hash links;
/// only sub-32-byte inline descendants are re-encoded.
fn encode_committed(node: &Node) -> Item {
    node.to_item(&mut encode_committed)
}

/// Recursively replaces every in-memory child whose encoding reaches 32
/// bytes with a hash link, sinking it (store reads are never needed —
/// see [`Trie::commit_into`]).
fn commit_children<K: NodeSink>(sink: &mut K, node: &mut Node) {
    match node {
        Node::Leaf { .. } => {}
        Node::Extension { child, .. } => commit_link(sink, child),
        Node::Branch { children, .. } => {
            for child in children.iter_mut().flatten() {
                commit_link(sink, child);
            }
        }
    }
}

fn commit_link<K: NodeSink>(sink: &mut K, link: &mut Link) {
    let Link::Node(node) = link else {
        return; // already committed
    };
    commit_children(sink, node);
    let item = encode_committed(node);
    let raw = rlp::encode(&item);
    if raw.len() < 32 {
        return; // stays inline in the parent's encoding
    }
    let h = B256::keccak(&raw);
    sink.sink_node(h, raw, node);
    *link = Link::Hash(h);
}

fn get_at<S: NodeStore>(db: &mut NodeDb<S>, link: &Link, path: &[u8]) -> Option<Vec<u8>> {
    let owned;
    let node = match link {
        Link::Node(n) => n.as_ref(),
        Link::Hash(h) => {
            owned = db.load_node(*h);
            &owned
        }
    };
    match node {
        Node::Leaf { path: lp, value } => (lp.as_slice() == path).then(|| value.clone()),
        Node::Extension { path: ep, child } => path
            .strip_prefix(ep.as_slice())
            .and_then(|rest| get_at(db, child, rest)),
        Node::Branch { children, value } => match path.split_first() {
            None => value.clone(),
            Some((&nibble, rest)) => children[nibble as usize]
                .as_ref()
                .and_then(|c| get_at(db, c, rest)),
        },
    }
}

fn leaf(path: &[u8], value: Vec<u8>) -> Link {
    Link::Node(Box::new(Node::Leaf {
        path: path.to_vec(),
        value,
    }))
}

/// Wraps `node` in an extension over `prefix` (or returns it unchanged
/// for an empty prefix).
fn wrap_prefix(prefix: &[u8], node: Node) -> Node {
    if prefix.is_empty() {
        node
    } else {
        Node::Extension {
            path: prefix.to_vec(),
            child: Link::Node(Box::new(node)),
        }
    }
}

fn insert_at<S: NodeStore>(
    db: &mut NodeDb<S>,
    link: Option<Link>,
    path: &[u8],
    value: Vec<u8>,
) -> Link {
    let Some(link) = link else {
        return leaf(path, value);
    };
    let new = match db.take_node(link) {
        Node::Leaf {
            path: lp,
            value: lv,
        } => {
            let common = common_prefix(&lp, path);
            if common == lp.len() && common == path.len() {
                Node::Leaf { path: lp, value } // overwrite
            } else {
                let mut children: [Option<Link>; 16] = Default::default();
                let mut branch_value = None;
                if lp.len() == common {
                    branch_value = Some(lv);
                } else {
                    children[lp[common] as usize] = Some(leaf(&lp[common + 1..], lv));
                }
                if path.len() == common {
                    branch_value = Some(value);
                } else {
                    children[path[common] as usize] = Some(leaf(&path[common + 1..], value));
                }
                wrap_prefix(
                    &path[..common],
                    Node::Branch {
                        children,
                        value: branch_value,
                    },
                )
            }
        }
        Node::Extension { path: ep, child } => {
            let common = common_prefix(&ep, path);
            if common == ep.len() {
                Node::Extension {
                    path: ep,
                    child: insert_at(db, Some(child), &path[common..], value),
                }
            } else {
                // Split the extension at the divergence point.
                let mut children: [Option<Link>; 16] = Default::default();
                let mut branch_value = None;
                let rest = &ep[common + 1..];
                children[ep[common] as usize] = Some(if rest.is_empty() {
                    child
                } else {
                    Link::Node(Box::new(Node::Extension {
                        path: rest.to_vec(),
                        child,
                    }))
                });
                if path.len() == common {
                    branch_value = Some(value);
                } else {
                    children[path[common] as usize] = Some(leaf(&path[common + 1..], value));
                }
                wrap_prefix(
                    &ep[..common],
                    Node::Branch {
                        children,
                        value: branch_value,
                    },
                )
            }
        }
        Node::Branch {
            mut children,
            value: branch_value,
        } => match path.split_first() {
            None => Node::Branch {
                children,
                value: Some(value),
            },
            Some((&nibble, rest)) => {
                let slot = &mut children[nibble as usize];
                *slot = Some(insert_at(db, slot.take(), rest, value));
                Node::Branch {
                    children,
                    value: branch_value,
                }
            }
        },
    };
    Link::Node(Box::new(new))
}

/// Removes `path` from the subtree at `link`. The key is known to exist.
/// Returns the replacement subtree, or `None` when it became empty.
fn remove_at<S: NodeStore>(db: &mut NodeDb<S>, link: Link, path: &[u8]) -> Option<Link> {
    match db.take_node(link) {
        Node::Leaf { path: lp, .. } => {
            debug_assert_eq!(lp.as_slice(), path, "remove_at requires an existing key");
            None
        }
        Node::Extension { path: ep, child } => {
            let rest = path.strip_prefix(ep.as_slice()).expect("key exists");
            remove_at(db, child, rest).map(|child| merge_prefix(db, ep, child))
        }
        Node::Branch {
            mut children,
            mut value,
        } => {
            match path.split_first() {
                None => value = None,
                Some((&nibble, rest)) => {
                    let slot = &mut children[nibble as usize];
                    let child = slot.take().expect("key exists");
                    *slot = remove_at(db, child, rest);
                }
            }
            normalize_branch(db, children, value)
        }
    }
}

/// Re-attaches `child` below the path `prefix`, merging paths when the
/// child is itself a leaf or extension (the yellow-paper collapse rule).
fn merge_prefix<S: NodeStore>(db: &mut NodeDb<S>, mut prefix: Vec<u8>, child: Link) -> Link {
    let node = match db.take_node(child) {
        Node::Leaf { path, value } => {
            prefix.extend_from_slice(&path);
            Node::Leaf {
                path: prefix,
                value,
            }
        }
        Node::Extension { path, child } => {
            prefix.extend_from_slice(&path);
            Node::Extension {
                path: prefix,
                child,
            }
        }
        branch => Node::Extension {
            path: prefix,
            child: Link::Node(Box::new(branch)),
        },
    };
    Link::Node(Box::new(node))
}

/// Restores the branch invariant after a removal: a branch must keep at
/// least two of {children, value}; thinner remnants collapse into a leaf
/// or merge into their single child.
fn normalize_branch<S: NodeStore>(
    db: &mut NodeDb<S>,
    mut children: [Option<Link>; 16],
    value: Option<Vec<u8>>,
) -> Option<Link> {
    let occupied: Vec<usize> = (0..16).filter(|&i| children[i].is_some()).collect();
    match (occupied.len(), value) {
        (0, None) => None,
        (0, Some(value)) => Some(Link::Node(Box::new(Node::Leaf {
            path: Vec::new(),
            value,
        }))),
        (1, None) => {
            let i = occupied[0];
            let child = children[i].take().expect("occupied");
            Some(merge_prefix(db, vec![i as u8], child))
        }
        (_, value) => Some(Link::Node(Box::new(Node::Branch { children, value }))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::MemStore;

    fn db() -> NodeDb<MemStore> {
        NodeDb::new(MemStore::new())
    }

    #[test]
    fn empty_root_constant() {
        // keccak(rlp("")) — the canonical Ethereum empty-trie root.
        assert_eq!(
            empty_root().to_string(),
            "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
        );
        let mut db = db();
        assert_eq!(Trie::empty().commit(&mut db), empty_root());
        assert!(Trie::from_root(empty_root()).is_empty());
    }

    #[test]
    fn insert_get_overwrite_remove() {
        let mut db = db();
        let mut t = Trie::empty();
        t.insert(&mut db, b"dog", b"puppy");
        t.insert(&mut db, b"doge", b"coin");
        assert_eq!(t.get(&mut db, b"dog"), Some(b"puppy".to_vec()));
        assert_eq!(t.get(&mut db, b"doge"), Some(b"coin".to_vec()));
        assert_eq!(t.get(&mut db, b"do"), None);
        t.insert(&mut db, b"dog", b"hound");
        assert_eq!(t.get(&mut db, b"dog"), Some(b"hound".to_vec()));
        t.remove(&mut db, b"dog");
        assert_eq!(t.get(&mut db, b"dog"), None);
        assert_eq!(t.get(&mut db, b"doge"), Some(b"coin".to_vec()));
    }

    #[test]
    fn remove_to_empty_restores_empty_root() {
        let mut db = db();
        let mut t = Trie::empty();
        t.insert(&mut db, b"a", b"1");
        t.insert(&mut db, b"b", b"2");
        t.remove(&mut db, b"a");
        t.remove(&mut db, b"b");
        assert!(t.is_empty());
        assert_eq!(t.commit(&mut db), empty_root());
    }

    #[test]
    fn empty_value_insert_means_delete() {
        let mut db = db();
        let mut t = Trie::empty();
        t.insert(&mut db, b"key", b"value");
        t.insert(&mut db, b"key", b"");
        assert!(t.is_empty());
    }

    #[test]
    fn removing_absent_key_keeps_root_clean() {
        let mut db = db();
        let mut t = Trie::empty();
        t.insert(&mut db, b"present", b"yes");
        let root = t.commit(&mut db);
        t.remove(&mut db, b"absent");
        assert!(!t.is_dirty(), "no-op removal must not dirty the trie");
        assert_eq!(t.commit(&mut db), root);
    }

    #[test]
    fn commit_then_read_back_through_store() {
        let mut db = db();
        let mut t = Trie::empty();
        for i in 0u32..64 {
            t.insert(&mut db, &i.to_be_bytes(), format!("val{i}").as_bytes());
        }
        let root = t.commit(&mut db);
        let reopened = Trie::from_root(root);
        for i in 0u32..64 {
            assert_eq!(
                reopened.get(&mut db, &i.to_be_bytes()),
                Some(format!("val{i}").into_bytes())
            );
        }
        assert_eq!(reopened.get(&mut db, &99u32.to_be_bytes()), None);
    }

    #[test]
    fn clean_commit_is_free() {
        let mut db = db();
        let mut t = Trie::empty();
        t.insert(&mut db, b"k", b"v");
        let root = t.commit(&mut db);
        let hashed = db.stats().nodes_hashed;
        assert_eq!(t.commit(&mut db), root);
        assert_eq!(
            db.stats().nodes_hashed,
            hashed,
            "clean commit hashes nothing"
        );
    }

    #[test]
    fn incremental_commit_touches_dirty_path_only() {
        let mut db = db();
        let mut t = Trie::empty();
        // Fixed-width keys, like the secure trie's 32-byte hashes.
        for i in 0u32..512 {
            t.insert(&mut db, &B256::keccak(&i.to_be_bytes()).into_bytes(), b"v1");
        }
        t.commit(&mut db);
        let before = db.stats().nodes_hashed;

        t.insert(
            &mut db,
            &B256::keccak(&7u32.to_be_bytes()).into_bytes(),
            b"v2",
        );
        t.commit(&mut db);
        let dirty = db.stats().nodes_hashed - before;
        assert!(dirty > 0);
        assert!(
            dirty <= 12,
            "one-key update must re-hash a path, not the trie ({dirty} nodes)"
        );
    }
}
