//! Property test for the parallel commit path: the same random
//! account/storage churn — creates, overwrites, slot deletes,
//! `reset_storage` wipes and selfdestructs (including delete-then-
//! recreate in one round) — is driven through committers configured for
//! 1, 4 and 8 worker threads, and after every round all three must land
//! on the same root as a from-scratch rebuild of a plain `HashMap`
//! reference model. Any divergence in the deterministic batch merge,
//! the dirty-account buffering or the subtrie fan-out panics here.

use mtpu_primitives::{Address, SplitMix64, B256, U256};
use mtpu_statedb::{empty_code_hash, AccountUpdate, MemStore, StateCommitter};
use std::collections::HashMap;

const ROUNDS: usize = 16;
/// Ops per round; most rounds dirty well past the parallel fan-out
/// thresholds (4 subtries / 4 root-branch children).
const OPS_PER_ROUND: usize = 18;
/// Address pool size — small enough that deletes and recreates hit.
const POOL: u64 = 48;

#[derive(Clone, Default)]
struct ModelAccount {
    nonce: u64,
    balance: U256,
    storage: HashMap<U256, U256>,
}

type Model = HashMap<Address, ModelAccount>;
type Ops = Vec<(Address, Option<AccountUpdate>)>;

/// Generates one round of ops, applying them to the reference model as
/// it goes (`None` = selfdestruct, zero slot value = slot delete).
fn round_ops(rng: &mut SplitMix64, model: &mut Model) -> Ops {
    let mut ops = Vec::new();
    for _ in 0..OPS_PER_ROUND {
        let addr = Address::from_low_u64(rng.random_range(0..POOL) * 0x0101 + 7);
        let selfdestruct = model.contains_key(&addr) && rng.random_bool(0.15);
        if selfdestruct {
            model.remove(&addr);
            ops.push((addr, None));
            continue;
        }
        let acct = model.entry(addr).or_default();
        acct.nonce += 1;
        acct.balance = U256::from(rng.random_range(1..1u64 << 48));
        let mut up = AccountUpdate::plain(acct.nonce, acct.balance, empty_code_hash());
        if rng.random_bool(0.1) {
            up.reset_storage = true;
            acct.storage.clear();
        }
        for _ in 0..rng.random_index(6) {
            let slot = if !acct.storage.is_empty() && rng.random_bool(0.3) {
                // Target an existing slot so overwrites and deletes hit.
                let mut keys: Vec<U256> = acct.storage.keys().copied().collect();
                keys.sort();
                keys[rng.random_index(keys.len())]
            } else {
                U256::from(rng.random_range(0..512))
            };
            let value = if rng.random_bool(0.25) {
                U256::ZERO
            } else {
                U256::from(rng.next_u64() | 1)
            };
            if value.is_zero() {
                acct.storage.remove(&slot);
            } else {
                acct.storage.insert(slot, value);
            }
            up.storage.push((slot, value));
        }
        ops.push((addr, Some(up)));
    }
    ops
}

fn apply(committer: &mut StateCommitter<MemStore>, ops: &Ops) {
    for (addr, up) in ops {
        match up {
            Some(up) => committer.update_account(addr, up),
            None => committer.delete_account(addr),
        }
    }
}

/// The oracle: a fresh committer fed the whole model at once.
fn scratch_root(model: &Model) -> B256 {
    let mut c = StateCommitter::new(MemStore::new());
    for (addr, acct) in model {
        let mut up = AccountUpdate::plain(acct.nonce, acct.balance, empty_code_hash());
        up.storage
            .extend(acct.storage.iter().map(|(&k, &v)| (k, v)));
        c.update_account(addr, &up);
    }
    c.commit()
}

#[test]
fn parallel_commit_matches_sequential_and_scratch_rebuild() {
    let mut rng = SplitMix64::new(0x9a7a_11e1);
    let mut model = Model::new();
    let mut seq = StateCommitter::new(MemStore::new());
    let mut par4 = StateCommitter::new(MemStore::new()).with_threads(4);
    let mut par8 = StateCommitter::new(MemStore::new()).with_threads(8);

    for round in 1..=ROUNDS {
        let ops = round_ops(&mut rng, &mut model);
        apply(&mut seq, &ops);
        apply(&mut par4, &ops);
        apply(&mut par8, &ops);

        let want = scratch_root(&model);
        let r1 = seq.commit();
        assert_eq!(
            r1, want,
            "sequential root diverged from model at round {round}"
        );
        assert_eq!(par4.commit(), r1, "4-thread root diverged at round {round}");
        assert_eq!(par8.commit(), r1, "8-thread root diverged at round {round}");
    }

    // The parallel committers must also *read* back the full model —
    // records and every storage slot — not just hash to the right root.
    for (addr, acct) in &model {
        for committer in [&mut par4, &mut par8] {
            let record = committer
                .account(addr)
                .expect("live account missing after parallel commits");
            assert_eq!(record.nonce, acct.nonce);
            assert_eq!(record.balance, acct.balance);
            for (&slot, &value) in &acct.storage {
                assert_eq!(committer.storage_value(addr, slot), value);
            }
        }
    }
    assert!(!model.is_empty(), "churn must leave live accounts");
}
