//! Known-answer tests against canonical Ethereum MPT roots, plus
//! SplitMix64-driven property tests (insertion-order independence and
//! delete/re-insert churn never changing the root).

use mtpu_primitives::{rlp, SplitMix64, B256};
use mtpu_statedb::{empty_root, MemStore, NodeDb, Trie};

fn db() -> NodeDb<MemStore> {
    NodeDb::new(MemStore::new())
}

fn root_of(pairs: &[(&[u8], &[u8])]) -> B256 {
    let mut db = db();
    let mut trie = Trie::empty();
    for (k, v) in pairs {
        trie.insert(&mut db, k, v);
    }
    trie.commit(&mut db)
}

fn hex(root: B256) -> String {
    root.to_string()
}

#[test]
fn empty_trie_root_is_keccak_of_rlp_empty_string() {
    let expected = B256::keccak(&rlp::encode(&rlp::Item::bytes(Vec::new())));
    assert_eq!(empty_root(), expected);
    assert_eq!(
        hex(empty_root()),
        "0x56e81f171bcc55a6ff8345e692c0f86e5b48e01b996cadc001622fb5e363b421"
    );
    assert_eq!(root_of(&[]), empty_root());
}

// The fixed insert-set roots below are canonical Ethereum trie vectors
// (the `trietest.json` family shared by the major client test suites).

#[test]
fn canonical_single_long_value() {
    let value = [b'a'; 50];
    assert_eq!(
        hex(root_of(&[(b"A", &value)])),
        "0xd23786fb4a010da3ce639d66d5e904a11dbc02746d1ce25029e53290cabf28ab"
    );
}

#[test]
fn canonical_doe_reindeer() {
    assert_eq!(
        hex(root_of(&[
            (b"doe", b"reindeer"),
            (b"dog", b"puppy"),
            (b"dogglesworth", b"cat"),
        ])),
        "0x8aad789dff2f538bca5d8ea56e8abe10f4c7ba3a5dea95fea4cd6e7c3a1168d3"
    );
}

#[test]
fn canonical_branching_set() {
    assert_eq!(
        hex(root_of(&[
            (b"do", b"verb"),
            (b"dog", b"puppy"),
            (b"doge", b"coin"),
            (b"horse", b"stallion"),
        ])),
        "0x5991bb8c6514148a29db676a14ac506cd2cd5775ace63c30a4fe457715e9ac84"
    );
}

#[test]
fn canonical_foo_food() {
    assert_eq!(
        hex(root_of(&[(b"foo", b"bar"), (b"food", b"bass")])),
        "0x17beaa1648bafa633cda809c90c04af50fc8aed3cb40d16efbddee6fdf63c4c3"
    );
}

#[test]
fn canonical_roots_are_insertion_order_independent() {
    let forward = root_of(&[
        (b"do", b"verb"),
        (b"dog", b"puppy"),
        (b"doge", b"coin"),
        (b"horse", b"stallion"),
    ]);
    let backward = root_of(&[
        (b"horse", b"stallion"),
        (b"doge", b"coin"),
        (b"dog", b"puppy"),
        (b"do", b"verb"),
    ]);
    assert_eq!(forward, backward);
}

/// Deterministic random key/value set for the property tests.
fn random_pairs(rng: &mut SplitMix64, n: usize) -> Vec<(Vec<u8>, Vec<u8>)> {
    (0..n)
        .map(|_| {
            let klen = rng.random_range(1..40) as usize;
            let vlen = rng.random_range(1..64) as usize;
            let mut k = vec![0u8; klen];
            let mut v = vec![0u8; vlen];
            rng.fill_bytes(&mut k);
            rng.fill_bytes(&mut v);
            (k, v)
        })
        .collect()
}

/// Fisher–Yates driven by the in-repo PRNG.
fn shuffle<T>(rng: &mut SplitMix64, items: &mut [T]) {
    for i in (1..items.len()).rev() {
        items.swap(i, rng.random_index(i + 1));
    }
}

#[test]
fn property_insertion_order_never_changes_root() {
    let mut rng = SplitMix64::new(0x7121E);
    let mut pairs = random_pairs(&mut rng, 300);
    // Dedup by key: later inserts of the same key overwrite, so order
    // WOULD matter for duplicates — the property is about distinct keys.
    pairs.sort();
    pairs.dedup_by(|a, b| a.0 == b.0);

    let mut db1 = db();
    let mut t1 = Trie::empty();
    for (k, v) in &pairs {
        t1.insert(&mut db1, k, v);
    }
    let baseline = t1.commit(&mut db1);

    for _ in 0..5 {
        shuffle(&mut rng, &mut pairs);
        let mut db2 = db();
        let mut t2 = Trie::empty();
        for (k, v) in &pairs {
            t2.insert(&mut db2, k, v);
        }
        assert_eq!(t2.commit(&mut db2), baseline);
    }
}

#[test]
fn property_delete_and_reinsert_churn_never_changes_root() {
    let mut rng = SplitMix64::new(0xC5112);
    let mut pairs = random_pairs(&mut rng, 200);
    pairs.sort();
    pairs.dedup_by(|a, b| a.0 == b.0);

    let mut db = db();
    let mut trie = Trie::empty();
    for (k, v) in &pairs {
        trie.insert(&mut db, k, v);
    }
    let baseline = trie.commit(&mut db);

    for round in 0..5 {
        // Remove a random half (committing mid-churn must not matter),
        // then re-insert the same pairs.
        let mut victims: Vec<usize> = (0..pairs.len()).collect();
        shuffle(&mut rng, &mut victims);
        victims.truncate(pairs.len() / 2);
        for &i in &victims {
            trie.remove(&mut db, &pairs[i].0);
        }
        if round % 2 == 0 {
            trie.commit(&mut db);
        }
        for &i in &victims {
            let (k, v) = &pairs[i];
            trie.insert(&mut db, k, v);
        }
        assert_eq!(trie.commit(&mut db), baseline, "round {round}");
    }
}

#[test]
fn property_incremental_equals_from_scratch() {
    let mut rng = SplitMix64::new(0x1AC);
    let mut db_inc = db();
    let mut incremental = Trie::empty();
    // Reference model of current contents, rebuilt from scratch each
    // block.
    let mut model: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();

    for _block in 0..20 {
        for _ in 0..30 {
            if !model.is_empty() && rng.random_bool(0.3) {
                let i = rng.random_index(model.len());
                let (k, _) = model.swap_remove(i);
                incremental.remove(&mut db_inc, &k);
            } else {
                let mut k = vec![0u8; rng.random_range(1..32) as usize];
                let mut v = vec![0u8; rng.random_range(1..48) as usize];
                rng.fill_bytes(&mut k);
                rng.fill_bytes(&mut v);
                model.retain(|(mk, _)| mk != &k);
                model.push((k.clone(), v.clone()));
                incremental.insert(&mut db_inc, &k, &v);
            }
        }
        let got = incremental.commit(&mut db_inc);
        let want = root_of(
            &model
                .iter()
                .map(|(k, v)| (k.as_slice(), v.as_slice()))
                .collect::<Vec<_>>(),
        );
        assert_eq!(got, want, "incremental root diverged from rebuild");
    }
}
