//! Exporters: human-readable table, machine-readable JSON snapshot, and
//! Chrome `trace_event` JSON for `about:tracing` / Perfetto.

use std::fmt::Write as _;

use crate::json::{escape, number};
use crate::metrics::Registry;
use crate::span::{TraceArg, SIM_PID, WALL_PID};

impl Registry {
    /// Renders every metric as a fixed-width text table.
    pub fn render_table(&self) -> String {
        let counters = self.counters_snapshot();
        let gauges = self.gauges_snapshot();
        let histograms = self.histograms_snapshot();
        let (recorded, dropped) = self.event_counts();

        let mut out = String::new();
        out.push_str("== telemetry ==\n");
        if !counters.is_empty() {
            let w = counters.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            out.push_str("counters:\n");
            for (k, v) in &counters {
                let _ = writeln!(out, "  {k:<w$}  {v}");
            }
        }
        if !gauges.is_empty() {
            let w = gauges.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            out.push_str("gauges:\n");
            for (k, v) in &gauges {
                let _ = writeln!(out, "  {k:<w$}  {v:.3}");
            }
        }
        if !histograms.is_empty() {
            let w = histograms.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
            out.push_str("histograms:\n");
            let _ = writeln!(
                out,
                "  {:<w$}  {:>10} {:>12} {:>10} {:>10} {:>10} {:>10}",
                "name", "count", "mean", "p50", "p90", "p99", "max"
            );
            for (k, h) in &histograms {
                let _ = writeln!(
                    out,
                    "  {k:<w$}  {:>10} {:>12.1} {:>10} {:>10} {:>10} {:>10}",
                    h.count,
                    h.mean(),
                    h.percentile(50.0),
                    h.percentile(90.0),
                    h.percentile(99.0),
                    h.max
                );
            }
        }
        let _ = writeln!(out, "events: {recorded} recorded, {dropped} dropped");
        out
    }

    /// Serializes every metric (and event-log counts) as one JSON object:
    /// `{"counters":{...},"gauges":{...},"histograms":{...},"events":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str("\"counters\":{");
        for (i, (k, v)) in self.counters_snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{v}", escape(k));
        }
        out.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges_snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", escape(k), number(*v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms_snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p90\":{},\"p99\":{}}}",
                escape(k),
                h.count,
                h.sum,
                h.min,
                h.max,
                number(h.mean()),
                h.percentile(50.0),
                h.percentile(90.0),
                h.percentile(99.0),
            );
        }
        let (recorded, dropped) = self.event_counts();
        let _ = write!(
            out,
            "}},\"events\":{{\"recorded\":{recorded},\"dropped\":{dropped}}}}}"
        );
        out
    }

    /// Serializes the event log as Chrome `trace_event` JSON (complete
    /// `"ph":"X"` events sorted by timestamp, preceded by process/thread
    /// metadata). Load the result in `about:tracing` or
    /// <https://ui.perfetto.dev>.
    pub fn chrome_trace_json(&self) -> String {
        let (events, thread_names) = self.events.sorted();
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let meta = |out: &mut String, pid: u32, tid: Option<u32>, name: &str, first: &mut bool| {
            if !*first {
                out.push(',');
            }
            *first = false;
            let (ph_name, tid_field) = match tid {
                Some(t) => ("thread_name", format!(",\"tid\":{t}")),
                None => ("process_name", String::new()),
            };
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{pid}{tid_field},\"name\":\"{ph_name}\",\
                 \"args\":{{\"name\":{}}}}}",
                escape(name)
            );
        };
        let mut pids: Vec<u32> = events.iter().map(|e| e.pid).collect();
        pids.sort_unstable();
        pids.dedup();
        for pid in &pids {
            let label = match *pid {
                WALL_PID => "wall-clock",
                SIM_PID => "sim-cycles",
                _ => "process",
            };
            meta(&mut out, *pid, None, label, &mut first);
        }
        for (tid, name) in &thread_names {
            for pid in &pids {
                meta(&mut out, *pid, Some(*tid), name, &mut first);
            }
        }
        for e in &events {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"name\":{},\"cat\":{},\"pid\":{},\"tid\":{},\
                 \"ts\":{},\"dur\":{}",
                escape(&e.name),
                escape(e.cat),
                e.pid,
                e.tid,
                number(e.ts_ns as f64 / 1000.0),
                number(e.dur_ns as f64 / 1000.0),
            );
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (i, (k, v)) in e.args.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let rendered = match v {
                        TraceArg::U64(n) => n.to_string(),
                        TraceArg::F64(f) => number(*f),
                        TraceArg::Str(s) => escape(s),
                    };
                    let _ = write!(out, "{}:{rendered}", escape(k));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}
