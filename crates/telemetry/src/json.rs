//! Minimal JSON support: string escaping for the exporters and a small
//! recursive-descent parser used by tests and the bench smoke check to
//! validate emitted documents without external dependencies.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` into a double-quoted JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats an `f64` the way the exporters do: finite values with up to 3
/// decimals (trailing zeros trimmed), non-finite values as `null`.
pub fn number(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    let s = format!("{v:.3}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    s.to_string()
}

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Value>),
    /// Object (key order not preserved).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup for objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a human-readable message (with byte offset) on malformed
/// input or trailing garbage.
pub fn parse(input: &str) -> Result<Value, String> {
    let bytes = input.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing characters at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.num(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn num(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not needed for our own
                            // documents; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}
