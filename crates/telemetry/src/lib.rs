//! Zero-dependency observability for the MTPU workspace.
//!
//! Three pieces, all behind a single process-wide on/off switch:
//!
//! * a [`Registry`] of named [`Counter`]s, [`Gauge`]s and log-bucketed
//!   [`Histogram`]s with atomic hot paths and percentile summaries;
//! * scoped [`Span`]s that record wall-clock nanoseconds (and, via
//!   [`Registry::add_event`], simulated cycles) into a bounded ring-buffer
//!   event log;
//! * exporters: a human-readable table, machine-readable JSON, and Chrome
//!   `trace_event` JSON loadable in `about:tracing` / Perfetto.
//!
//! # Disabled-mode cost contract
//!
//! Telemetry is **off by default**. Every recording call
//! ([`Counter::inc`], [`Histogram::record`], [`span`], …) first performs
//! one `Relaxed` atomic bool load and returns immediately when disabled —
//! no locks, no allocation, no time syscalls. Instrumented hot loops pay
//! one predictable branch per event, which is why the wired binaries stay
//! within noise of their un-instrumented baselines.
//!
//! ```
//! use mtpu_telemetry as tel;
//!
//! tel::set_enabled(true);
//! let c = tel::global().counter("demo.requests");
//! c.inc();
//! let h = tel::global().histogram("demo.latency_ns");
//! h.record(1500);
//! {
//!     let _span = tel::span("demo.work", "demo");
//! } // span end recorded here
//! assert_eq!(c.get(), 1);
//! assert!(tel::global().to_json().contains("demo.requests"));
//! tel::set_enabled(false);
//! ```

pub mod export;
pub mod json;
pub mod metrics;
pub mod span;

pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, Registry};
pub use span::{Span, TraceArg, TraceEvent, SIM_PID, WALL_PID};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Turns recording on or off process-wide (off by default).
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// `true` when telemetry is recording. One `Relaxed` load — cheap enough
/// for per-opcode hot loops.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process-wide registry every instrumented crate records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Opens a wall-clock span on the global registry; the returned guard
/// records a complete trace event (and a `span.<name>` histogram sample)
/// when dropped. Inert when telemetry is disabled.
pub fn span(name: &'static str, cat: &'static str) -> Span {
    Span::enter(global(), name, cat)
}

/// Labels the calling thread in Chrome-trace exports (worker names).
pub fn name_thread(name: &str) {
    if enabled() {
        global().name_current_thread(name);
    }
}
