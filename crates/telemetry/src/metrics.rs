//! Named counters, gauges and log-bucketed histograms.
//!
//! Handles are `Arc`-backed and cheap to clone; the hot paths are single
//! atomic RMW operations guarded by the process-wide enabled flag.
//! Registration takes a mutex, so instrumented crates cache their handles
//! in `OnceLock`s rather than looking them up per event.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::span::{EventLog, TraceEvent};

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i`
/// (1..=62) holds values in `[2^(i-1), 2^i - 1]`, and bucket 63 is the
/// overflow bucket for everything at or above `2^62`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` when telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one when telemetry is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable floating-point gauge (stored as `f64` bits).
#[derive(Clone, Debug)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge when telemetry is enabled.
    #[inline]
    pub fn set(&self, v: f64) {
        if crate::enabled() {
            self.0.store(v.to_bits(), Ordering::Relaxed);
        }
    }

    /// Adds `v` when telemetry is enabled (not atomic across racing
    /// adders; gauges are set from single-threaded summary code).
    #[inline]
    pub fn add(&self, v: f64) {
        if crate::enabled() {
            let cur = f64::from_bits(self.0.load(Ordering::Relaxed));
            self.0.store((cur + v).to_bits(), Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramCell {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl HistogramCell {
    fn new() -> Self {
        HistogramCell {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A log₂-bucketed histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramCell>);

/// Bucket index for a value: 0 for 0, else `floor(log2(v)) + 1`, clamped
/// into the overflow bucket.
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive `(lo, hi)` value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        _ if i >= HISTOGRAM_BUCKETS - 1 => (1 << (HISTOGRAM_BUCKETS - 2), u64::MAX),
        _ => (1 << (i - 1), (1 << i) - 1),
    }
}

impl Histogram {
    /// Records one sample when telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if !crate::enabled() {
            return;
        }
        let c = &self.0;
        c.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    /// A consistent-enough snapshot for reporting (the histogram may be
    /// concurrently written; percentiles are approximate by construction).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let c = &self.0;
        let buckets: Vec<u64> = c
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let count = buckets.iter().sum();
        HistogramSnapshot {
            buckets,
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                c.min.load(Ordering::Relaxed)
            },
            max: c.max.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`bucket_bounds`]).
    pub buckets: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate `q`-th percentile (`q` in 0..=100) by linear
    /// interpolation inside the target bucket, clamped to the observed
    /// min/max. Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        // 1-based rank of the target sample.
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bucket_bounds(i);
                let lo = lo.max(self.min).min(self.max);
                let hi = hi.min(self.max).max(lo);
                let pos = (rank - seen) as f64 / n as f64;
                return lo + ((hi - lo) as f64 * pos).round() as u64;
            }
            seen += n;
        }
        self.max
    }
}

/// A registry of named metrics plus the trace-event log.
///
/// Names are free-form dotted strings (`"mtpu.db.hit"`); exports list
/// them in lexicographic order. [`crate::global`] returns the process
/// registry; tests may build private ones.
#[derive(Debug)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
    pub(crate) events: EventLog,
    pub(crate) epoch: Instant,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with the default (65 536-event) ring buffer.
    pub fn new() -> Self {
        Registry {
            counters: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            events: EventLog::new(1 << 16),
            epoch: Instant::now(),
        }
    }

    /// Gets or creates the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("counter map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Counter(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Gets or creates the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.gauges.lock().expect("gauge map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Gauge(Arc::new(AtomicU64::new(0))))
            .clone()
    }

    /// Gets or creates the histogram `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().expect("histogram map poisoned");
        map.entry(name.to_string())
            .or_insert_with(|| Histogram(Arc::new(HistogramCell::new())))
            .clone()
    }

    /// Nanoseconds since this registry was created (the wall-clock span
    /// timebase).
    pub fn now_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Appends a pre-built event (manual timelines, e.g. simulated-cycle
    /// schedules) when telemetry is enabled.
    pub fn add_event(&self, ev: TraceEvent) {
        if crate::enabled() {
            self.events.push(ev);
        }
    }

    /// Labels the calling thread in trace exports.
    pub fn name_current_thread(&self, name: &str) {
        self.events.name_thread(crate::span::current_tid(), name);
    }

    /// Labels an explicit thread id in trace exports (manual timelines).
    pub fn set_thread_name(&self, tid: u32, name: &str) {
        self.events.name_thread(tid, name);
    }

    /// `(recorded, dropped)` event counts.
    pub fn event_counts(&self) -> (usize, u64) {
        self.events.counts()
    }

    /// Snapshot of every counter, sorted by name.
    pub fn counters_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("counter map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every gauge, sorted by name.
    pub fn gauges_snapshot(&self) -> Vec<(String, f64)> {
        self.gauges
            .lock()
            .expect("gauge map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect()
    }

    /// Snapshot of every histogram, sorted by name.
    pub fn histograms_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }

    /// Zeroes every metric and clears the event log (names survive so
    /// cached handles stay valid).
    pub fn reset(&self) {
        for (_, c) in self.counters.lock().expect("counter map poisoned").iter() {
            c.0.store(0, Ordering::Relaxed);
        }
        for (_, g) in self.gauges.lock().expect("gauge map poisoned").iter() {
            g.0.store(0f64.to_bits(), Ordering::Relaxed);
        }
        for (_, h) in self
            .histograms
            .lock()
            .expect("histogram map poisoned")
            .iter()
        {
            for b in &h.0.buckets {
                b.store(0, Ordering::Relaxed);
            }
            h.0.count.store(0, Ordering::Relaxed);
            h.0.sum.store(0, Ordering::Relaxed);
            h.0.min.store(u64::MAX, Ordering::Relaxed);
            h.0.max.store(0, Ordering::Relaxed);
        }
        self.events.clear();
    }
}
