//! Scoped spans and the bounded trace-event ring buffer.
//!
//! A [`Span`] measures wall-clock time between construction and drop and
//! records a Chrome `"ph":"X"` complete event on the calling thread's
//! lane. Nested spans on one thread render as nested slices in Perfetto
//! purely by timestamp containment — no parent pointers needed.
//!
//! Simulated-cycle timelines (scheduler traces) are built by pushing
//! hand-made [`TraceEvent`]s with [`crate::Registry::add_event`] under
//! [`SIM_PID`], keeping the two time domains on separate process lanes.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::metrics::Registry;

/// Chrome-trace process id used for wall-clock events.
pub const WALL_PID: u32 = 1;
/// Chrome-trace process id used for simulated-cycle events (1 cycle is
/// rendered as 1 ns).
pub const SIM_PID: u32 = 2;

static NEXT_TID: AtomicU32 = AtomicU32::new(0);

thread_local! {
    static TID: u32 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// Small dense thread id of the calling thread (assigned on first use).
pub fn current_tid() -> u32 {
    TID.with(|t| *t)
}

/// A typed trace-event argument (rendered into the Chrome `args` object).
#[derive(Clone, Debug, PartialEq)]
pub enum TraceArg {
    /// Unsigned integer argument.
    U64(u64),
    /// Floating-point argument.
    F64(f64),
    /// String argument.
    Str(String),
}

impl From<u64> for TraceArg {
    fn from(v: u64) -> Self {
        TraceArg::U64(v)
    }
}

impl From<usize> for TraceArg {
    fn from(v: usize) -> Self {
        TraceArg::U64(v as u64)
    }
}

impl From<f64> for TraceArg {
    fn from(v: f64) -> Self {
        TraceArg::F64(v)
    }
}

impl From<&str> for TraceArg {
    fn from(v: &str) -> Self {
        TraceArg::Str(v.to_string())
    }
}

impl From<String> for TraceArg {
    fn from(v: String) -> Self {
        TraceArg::Str(v)
    }
}

/// One complete (`"ph":"X"`) Chrome trace event.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Slice label.
    pub name: String,
    /// Category (comma-separated in Chrome's UI filter).
    pub cat: &'static str,
    /// Process lane ([`WALL_PID`] or [`SIM_PID`]).
    pub pid: u32,
    /// Thread lane within the process.
    pub tid: u32,
    /// Start timestamp in nanoseconds (registry-epoch relative for wall
    /// events; cycle number for simulated events).
    pub ts_ns: u64,
    /// Duration in nanoseconds (or cycles).
    pub dur_ns: u64,
    /// Extra key/value payload.
    pub args: Vec<(String, TraceArg)>,
}

/// Fixed-capacity ring buffer of trace events plus thread labels.
#[derive(Debug)]
pub struct EventLog {
    inner: Mutex<LogInner>,
    dropped: AtomicU64,
}

#[derive(Debug)]
struct LogInner {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    thread_names: BTreeMap<u32, String>,
}

impl EventLog {
    pub(crate) fn new(capacity: usize) -> Self {
        EventLog {
            inner: Mutex::new(LogInner {
                events: VecDeque::with_capacity(capacity.min(4096)),
                capacity: capacity.max(1),
                thread_names: BTreeMap::new(),
            }),
            dropped: AtomicU64::new(0),
        }
    }

    pub(crate) fn push(&self, ev: TraceEvent) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        if inner.events.len() >= inner.capacity {
            inner.events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        inner.events.push_back(ev);
    }

    pub(crate) fn name_thread(&self, tid: u32, name: &str) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.thread_names.insert(tid, name.to_string());
    }

    pub(crate) fn counts(&self) -> (usize, u64) {
        let inner = self.inner.lock().expect("event log poisoned");
        (inner.events.len(), self.dropped.load(Ordering::Relaxed))
    }

    pub(crate) fn clear(&self) {
        let mut inner = self.inner.lock().expect("event log poisoned");
        inner.events.clear();
        inner.thread_names.clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Events sorted by start timestamp (then pid/tid for stability) plus
    /// the thread-name table — the exporter's input.
    pub(crate) fn sorted(&self) -> (Vec<TraceEvent>, BTreeMap<u32, String>) {
        let inner = self.inner.lock().expect("event log poisoned");
        let mut events: Vec<TraceEvent> = inner.events.iter().cloned().collect();
        events.sort_by_key(|e| (e.ts_ns, e.pid, e.tid));
        (events, inner.thread_names.clone())
    }
}

/// RAII wall-clock span; see [`crate::span`].
#[derive(Debug)]
pub struct Span {
    registry: Option<&'static Registry>,
    name: &'static str,
    cat: &'static str,
    start_ns: u64,
    args: Vec<(String, TraceArg)>,
}

impl Span {
    /// Opens a span on `registry`; inert when telemetry is disabled at
    /// entry.
    pub fn enter(registry: &'static Registry, name: &'static str, cat: &'static str) -> Span {
        if crate::enabled() {
            Span {
                registry: Some(registry),
                name,
                cat,
                start_ns: registry.now_ns(),
                args: Vec::new(),
            }
        } else {
            Span {
                registry: None,
                name,
                cat,
                start_ns: 0,
                args: Vec::new(),
            }
        }
    }

    /// Attaches a key/value payload to the recorded event (no-op on an
    /// inert span).
    pub fn arg(mut self, key: &str, value: impl Into<TraceArg>) -> Span {
        if self.registry.is_some() {
            self.args.push((key.to_string(), value.into()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(registry) = self.registry else {
            return;
        };
        // Disabled mid-span: drop silently rather than record a torn event.
        if !crate::enabled() {
            return;
        }
        let end = registry.now_ns();
        registry.events.push(TraceEvent {
            name: self.name.to_string(),
            cat: self.cat,
            pid: WALL_PID,
            tid: current_tid(),
            ts_ns: self.start_ns,
            dur_ns: end.saturating_sub(self.start_ns),
            args: std::mem::take(&mut self.args),
        });
        registry
            .histogram(&format!("span.{}", self.name))
            .record(end.saturating_sub(self.start_ns));
    }
}
