//! Golden-file test for the Chrome trace exporter: the emitted document
//! must be byte-identical to the checked-in golden, parse as valid JSON,
//! and keep its `"ph":"X"` events sorted by timestamp.

use mtpu_telemetry as tel;
use tel::json;
use tel::{Registry, TraceArg, TraceEvent, SIM_PID, WALL_PID};

fn fixture_registry() -> Registry {
    tel::set_enabled(true);
    let r = Registry::new();
    // Deliberately pushed out of timestamp order: the exporter must sort.
    r.add_event(TraceEvent {
        name: "commit".into(),
        cat: "parexec",
        pid: WALL_PID,
        tid: 1,
        ts_ns: 5_000,
        dur_ns: 1_500,
        args: vec![("tx".into(), TraceArg::U64(2))],
    });
    r.add_event(TraceEvent {
        name: "exec".into(),
        cat: "parexec",
        pid: WALL_PID,
        tid: 0,
        ts_ns: 1_000,
        dur_ns: 3_000,
        args: vec![
            ("tx".into(), TraceArg::U64(0)),
            ("ipc".into(), TraceArg::F64(2.5)),
            ("contract".into(), TraceArg::Str("\"Dai\"".into())),
        ],
    });
    r.add_event(TraceEvent {
        name: "tx1".into(),
        cat: "sched",
        pid: SIM_PID,
        tid: 3,
        ts_ns: 2_000,
        dur_ns: 4_000,
        args: Vec::new(),
    });
    r.set_thread_name(0, "worker0");
    r.set_thread_name(1, "worker1");
    tel::set_enabled(false);
    r
}

#[test]
fn chrome_trace_matches_golden() {
    let got = fixture_registry().chrome_trace_json();
    let golden = include_str!("golden/chrome_trace.json");
    assert_eq!(
        got,
        golden.trim_end(),
        "exporter output drifted from tests/golden/chrome_trace.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn chrome_trace_is_valid_sorted_trace_event_json() {
    let doc = fixture_registry().chrome_trace_json();
    let v = json::parse(&doc).expect("trace is valid JSON");
    let events = v
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .expect("traceEvents array");
    assert!(!events.is_empty());

    let mut last_ts = f64::NEG_INFINITY;
    let mut complete = 0;
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).expect("ph field");
        match ph {
            "M" => {
                // Metadata rows carry a pid and a name payload.
                assert!(e.get("pid").is_some());
                assert!(e.get("args").and_then(|a| a.get("name")).is_some());
            }
            "X" => {
                complete += 1;
                let ts = e.get("ts").and_then(|t| t.as_num()).expect("ts number");
                let dur = e.get("dur").and_then(|d| d.as_num()).expect("dur number");
                assert!(dur >= 0.0);
                assert!(ts >= last_ts, "complete events sorted by ts");
                last_ts = ts;
                for field in ["name", "cat", "pid", "tid"] {
                    assert!(e.get(field).is_some(), "X event has {field}");
                }
            }
            other => panic!("unexpected phase {other}"),
        }
    }
    assert_eq!(complete, 3, "all fixture events exported");
}
