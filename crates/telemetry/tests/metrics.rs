//! Unit tests for the metric primitives: bucketing and percentile math
//! (including the overflow bucket and empty histograms), counters,
//! gauges, the disabled-mode contract and JSON snapshot validity.

use mtpu_telemetry as tel;
use tel::json;
use tel::metrics::{bucket_bounds, bucket_index, HISTOGRAM_BUCKETS};
use tel::Registry;

use std::sync::{Mutex, MutexGuard, OnceLock};

/// Tests toggle the process-wide enabled flag; serialize them.
fn lock_enabled() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[test]
fn bucket_index_covers_the_u64_range() {
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    assert_eq!(bucket_index(2), 2);
    assert_eq!(bucket_index(3), 2);
    assert_eq!(bucket_index(4), 3);
    assert_eq!(bucket_index(1023), 10);
    assert_eq!(bucket_index(1024), 11);
    // Everything at or above 2^62 lands in the overflow bucket.
    assert_eq!(bucket_index(1 << 62), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
}

#[test]
fn bucket_bounds_partition_without_gaps() {
    let (lo0, hi0) = bucket_bounds(0);
    assert_eq!((lo0, hi0), (0, 0));
    let mut expected_lo = 1u64;
    for i in 1..HISTOGRAM_BUCKETS {
        let (lo, hi) = bucket_bounds(i);
        assert_eq!(lo, expected_lo, "bucket {i} starts where {} ended", i - 1);
        assert!(hi >= lo);
        // Every value in the range maps back to this bucket.
        assert_eq!(bucket_index(lo), i);
        assert_eq!(bucket_index(hi), i);
        if hi == u64::MAX {
            assert_eq!(
                i,
                HISTOGRAM_BUCKETS - 1,
                "only the overflow bucket is open-ended"
            );
            return;
        }
        expected_lo = hi + 1;
    }
    panic!("last bucket must reach u64::MAX");
}

#[test]
fn empty_histogram_is_all_zeroes() {
    let _gate = lock_enabled();
    let r = Registry::new();
    let h = r.histogram("empty");
    let s = h.snapshot();
    assert_eq!(s.count, 0);
    assert_eq!(s.sum, 0);
    assert_eq!(s.min, 0);
    assert_eq!(s.max, 0);
    assert_eq!(s.mean(), 0.0);
    for q in [0.0, 50.0, 99.0, 100.0] {
        assert_eq!(s.percentile(q), 0, "empty histogram p{q}");
    }
}

#[test]
fn percentiles_of_a_known_distribution() {
    let _gate = lock_enabled();
    tel::set_enabled(true);
    let r = Registry::new();
    let h = r.histogram("latency");
    // 100 samples: 1..=100.
    for v in 1..=100u64 {
        h.record(v);
    }
    tel::set_enabled(false);
    let s = h.snapshot();
    assert_eq!(s.count, 100);
    assert_eq!(s.sum, 5050);
    assert_eq!(s.min, 1);
    assert_eq!(s.max, 100);
    assert!((s.mean() - 50.5).abs() < 1e-9);
    // Log buckets are approximate: allow one power-of-two of slack.
    let p50 = s.percentile(50.0);
    assert!((32..=64).contains(&p50), "p50 {p50} within its bucket");
    let p99 = s.percentile(99.0);
    assert!((64..=100).contains(&p99), "p99 {p99} clamped to max");
    assert_eq!(s.percentile(100.0), 100);
    // p0 resolves to the first occupied bucket's low edge, >= min.
    assert!(s.percentile(0.0) >= 1);
}

#[test]
fn overflow_bucket_counts_and_clamps() {
    let _gate = lock_enabled();
    tel::set_enabled(true);
    let r = Registry::new();
    let h = r.histogram("huge");
    h.record(u64::MAX);
    h.record(u64::MAX - 1);
    h.record(1 << 62);
    tel::set_enabled(false);
    let s = h.snapshot();
    assert_eq!(s.count, 3);
    assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 3);
    assert_eq!(s.max, u64::MAX);
    assert_eq!(s.min, 1 << 62);
    // Percentiles stay inside the observed range even in the open bucket.
    let p50 = s.percentile(50.0);
    assert!(p50 >= s.min && p50 <= s.max);
}

#[test]
fn single_sample_percentiles_are_exactly_that_sample() {
    let _gate = lock_enabled();
    tel::set_enabled(true);
    let r = Registry::new();
    let h = r.histogram("one");
    h.record(42);
    tel::set_enabled(false);
    let s = h.snapshot();
    for q in [0.0, 50.0, 99.0, 100.0] {
        assert_eq!(s.percentile(q), 42, "p{q} of a single sample");
    }
}

#[test]
fn disabled_mode_records_nothing() {
    let _gate = lock_enabled();
    tel::set_enabled(false);
    let r = Registry::new();
    let c = r.counter("c");
    let g = r.gauge("g");
    let h = r.histogram("h");
    c.inc();
    c.add(10);
    g.set(3.5);
    h.record(9);
    r.add_event(tel::TraceEvent {
        name: "e".into(),
        cat: "t",
        pid: tel::WALL_PID,
        tid: 0,
        ts_ns: 0,
        dur_ns: 1,
        args: Vec::new(),
    });
    assert_eq!(c.get(), 0);
    assert_eq!(g.get(), 0.0);
    assert_eq!(h.snapshot().count, 0);
    assert_eq!(r.event_counts(), (0, 0));
}

#[test]
fn counters_and_gauges_round_trip() {
    let _gate = lock_enabled();
    tel::set_enabled(true);
    let r = Registry::new();
    let c = r.counter("hits");
    c.add(3);
    r.counter("hits").inc(); // same handle by name
    let g = r.gauge("ratio");
    g.set(0.75);
    g.add(0.25);
    tel::set_enabled(false);
    assert_eq!(c.get(), 4);
    assert_eq!(r.gauge("ratio").get(), 1.0);
}

#[test]
fn reset_zeroes_but_keeps_handles_valid() {
    let _gate = lock_enabled();
    tel::set_enabled(true);
    let r = Registry::new();
    let c = r.counter("x");
    let h = r.histogram("y");
    c.add(7);
    h.record(7);
    r.reset();
    assert_eq!(c.get(), 0);
    assert_eq!(h.snapshot().count, 0);
    c.inc();
    assert_eq!(c.get(), 1, "handle still wired to the registry");
    tel::set_enabled(false);
}

#[test]
fn json_snapshot_parses_and_contains_sections() {
    let _gate = lock_enabled();
    tel::set_enabled(true);
    let r = Registry::new();
    r.counter("a.b").add(5);
    r.gauge("c \"quoted\"").set(1.25);
    r.histogram("d").record(100);
    let doc = r.to_json();
    tel::set_enabled(false);
    let v = json::parse(&doc).expect("snapshot is valid JSON");
    assert_eq!(
        v.get("counters")
            .and_then(|c| c.get("a.b"))
            .and_then(|n| n.as_num()),
        Some(5.0)
    );
    assert_eq!(
        v.get("gauges")
            .and_then(|g| g.get("c \"quoted\""))
            .and_then(|n| n.as_num()),
        Some(1.25)
    );
    let d = v
        .get("histograms")
        .and_then(|h| h.get("d"))
        .expect("histogram d");
    assert_eq!(d.get("count").and_then(|n| n.as_num()), Some(1.0));
    assert_eq!(d.get("max").and_then(|n| n.as_num()), Some(100.0));
    assert!(v.get("events").is_some());
}

#[test]
fn spans_record_events_and_histograms() {
    let _gate = lock_enabled();
    tel::set_enabled(true);
    tel::global().reset();
    {
        let _outer = tel::span("outer", "test");
        let _inner = tel::span("inner", "test");
    }
    let (recorded, dropped) = tel::global().event_counts();
    tel::set_enabled(false);
    assert_eq!(dropped, 0);
    assert!(recorded >= 2, "both spans recorded: {recorded}");
    let spans: Vec<(String, _)> = tel::global()
        .histograms_snapshot()
        .into_iter()
        .filter(|(k, _)| k.starts_with("span."))
        .collect();
    assert!(spans.iter().any(|(k, _)| k == "span.outer"));
    assert!(spans.iter().any(|(k, _)| k == "span.inner"));
    tel::global().reset();
}

#[test]
fn table_export_mentions_every_metric() {
    let _gate = lock_enabled();
    tel::set_enabled(true);
    let r = Registry::new();
    r.counter("table.counter").add(2);
    r.gauge("table.gauge").set(9.0);
    r.histogram("table.hist").record(3);
    let t = r.render_table();
    tel::set_enabled(false);
    for needle in ["table.counter", "table.gauge", "table.hist", "events:"] {
        assert!(t.contains(needle), "table missing {needle}:\n{t}");
    }
}
