//! Synthetic block generation with controllable dependency ratio, ERC20
//! proportion and hotspot skew — the stand-in for the paper's sampled
//! mainnet blocks (DESIGN.md substitution #1).

use mtpu_contracts::Fixture;
use mtpu_evm::tx::{Block, BlockHeader, Transaction};
use mtpu_primitives::SplitMix64;
use mtpu_primitives::U256;

/// Shape of one generated block.
#[derive(Debug, Clone)]
pub struct BlockConfig {
    /// Number of transactions.
    pub tx_count: usize,
    /// Target fraction of transactions that depend on an earlier one
    /// (the generator aims for it; the realized DAG ratio is measured).
    pub dependent_ratio: f64,
    /// When set, fraction of transactions that are ERC20 token calls
    /// (Table 8's sweep); the rest are non-ERC20 contract calls.
    pub erc20_ratio: Option<f64>,
    /// Fraction of smart-contract transactions; the rest are plain value
    /// transfers (Ethereum 2021: ~68% SCT, Table 1).
    pub sct_ratio: f64,
    /// When emitting a dependent transaction, probability of extending
    /// the most recent dependency chain (long chains shrink the DAG
    /// width) instead of conflicting with a random earlier transaction.
    pub chain_bias: f64,
    /// Hotspot focus: route this fraction of independent SCTs to the
    /// named contract (models drifting hotspots, paper §2.2.3).
    pub focus: Option<(&'static str, f64)>,
}

impl Default for BlockConfig {
    fn default() -> Self {
        BlockConfig {
            tx_count: 128,
            dependent_ratio: 0.2,
            erc20_ratio: None,
            sct_ratio: 0.9,
            chain_bias: 0.8,
            focus: None,
        }
    }
}

/// Contract popularity weights approximating the paper's hotspot skew
/// (TOP5 carry ≳ 37% of SCT invocations).
const POPULARITY: &[(&str, u32)] = &[
    ("Tether USD", 28),
    ("FiatTokenProxy", 14),
    ("UniswapV2Router02", 14),
    ("OpenSea", 10),
    ("LinkToken", 8),
    ("SwapRouter", 8),
    ("Dai", 8),
    ("MainchainGatewayProxy", 6),
    ("WETH9", 7),
    ("Ballot", 4),
    ("CryptoCat", 4),
];

/// ERC20-transfer-capable contracts (the App-engine class of BPU).
const ERC20_CONTRACTS: &[&str] = &["Tether USD", "FiatTokenProxy", "LinkToken", "Dai", "WETH9"];
/// Record of a generated transaction the dependent generator can attach
/// conflicts to.
#[derive(Debug, Clone)]
enum TxSeedKind {
    Erc20 {
        contract: &'static str,
        sender: u64,
        recipient: u64,
    },
    Swap {
        sender: u64,
    },
    Other {
        sender: u64,
    },
}

/// Deterministic block generator over a [`Fixture`].
#[derive(Debug)]
pub struct Generator {
    /// The deployed world (nonces advance as blocks are generated).
    pub fx: Fixture,
    rng: SplitMix64,
    /// Rotates fresh users for independent transactions.
    cursor: u64,
    height: u64,
}

impl Generator {
    /// A generator with a fresh fixture and deterministic seed.
    pub fn new(seed: u64) -> Self {
        Generator {
            fx: Fixture::new(),
            rng: SplitMix64::seed_from_u64(seed),
            cursor: 0,
            height: 1,
        }
    }

    fn fresh_user(&mut self) -> u64 {
        let u = self.cursor % mtpu_contracts::fixture::USER_COUNT;
        self.cursor += 1;
        u
    }

    fn pick_weighted(&mut self, pool: &[&'static str]) -> &'static str {
        let weights: Vec<u32> = pool
            .iter()
            .map(|n| {
                POPULARITY
                    .iter()
                    .find(|(p, _)| p == n)
                    .map(|(_, w)| *w)
                    .unwrap_or(1)
            })
            .collect();
        let total: u32 = weights.iter().sum();
        let mut pick = self.rng.random_range(0..total as u64) as u32;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                return pool[i];
            }
            pick -= w;
        }
        pool[pool.len() - 1]
    }

    /// Generates one block aiming for `cfg`'s shape.
    pub fn block(&mut self, cfg: &BlockConfig) -> Block {
        // Fresh users per block so independence is achievable.
        self.cursor = 0;
        let mut txs: Vec<Transaction> = Vec::with_capacity(cfg.tx_count);
        let mut seeds: Vec<TxSeedKind> = Vec::with_capacity(cfg.tx_count);
        let mut last_dependent: Option<usize> = None;

        for i in 0..cfg.tx_count {
            let want_dependent = i > 0 && self.rng.random_bool(cfg.dependent_ratio);
            let (tx, seed) = if want_dependent {
                // Chain-mode transactions thread one long dependency
                // chain (they conflict with the chain head and become the
                // new head); branch-mode ones conflict with a random
                // earlier transaction without disturbing the chain.
                match last_dependent {
                    Some(t) if self.rng.random_bool(cfg.chain_bias) => {
                        last_dependent = Some(i);
                        self.dependent_tx(&seeds, t)
                    }
                    Some(_) => {
                        let t = self.rng.random_index(seeds.len());
                        self.dependent_tx(&seeds, t)
                    }
                    None => {
                        last_dependent = Some(i);
                        let t = self.rng.random_index(seeds.len());
                        self.dependent_tx(&seeds, t)
                    }
                }
            } else if !self.rng.random_bool(cfg.sct_ratio) {
                self.plain_transfer()
            } else {
                self.independent_sct(cfg)
            };
            txs.push(tx);
            seeds.push(seed);
        }
        let header = BlockHeader {
            height: self.height,
            ..Default::default()
        };
        self.height += 1;
        Block {
            header,
            transactions: txs,
        }
    }

    fn plain_transfer(&mut self) -> (Transaction, TxSeedKind) {
        let from = self.fresh_user();
        let to = self.fresh_user();
        let nonce = self.fx.next_nonce(from);
        let tx = Transaction::transfer(
            Fixture::user_address(from),
            Fixture::user_address(to),
            U256::from(self.rng.random_range(1..1000)),
            nonce,
        );
        (tx, TxSeedKind::Other { sender: from })
    }

    fn independent_sct(&mut self, cfg: &BlockConfig) -> (Transaction, TxSeedKind) {
        if let Some((name, share)) = cfg.focus {
            if self.rng.random_bool(share) {
                return self.focused_call(name);
            }
        }
        let contract = match cfg.erc20_ratio {
            Some(r) => {
                if self.rng.random_bool(r) {
                    self.pick_weighted(ERC20_CONTRACTS)
                } else {
                    self.pick_weighted(&["UniswapV2Router02", "SwapRouter", "Ballot", "CryptoCat"])
                }
            }
            None => self.pick_weighted(&[
                "Tether USD",
                "FiatTokenProxy",
                "LinkToken",
                "Dai",
                "WETH9",
                "UniswapV2Router02",
                "SwapRouter",
                "Ballot",
                "CryptoCat",
            ]),
        };
        match contract {
            "UniswapV2Router02" | "SwapRouter" => {
                // Each fresh sender swaps its dedicated pair, so
                // independent swaps touch disjoint reserves.
                let sender = self.fresh_user();
                self.swap_tx(contract, sender)
            }
            "Ballot" => {
                let voter = self.fresh_user();
                // Spread votes over the proposal space to limit tally conflicts.
                let proposal = U256::from(self.rng.random_range(0..256));
                let nonce_tx = self.fx.call_tx(voter, "Ballot", "vote", &[proposal]);
                (nonce_tx, TxSeedKind::Other { sender: voter })
            }
            "CryptoCat" => {
                let owner = self.fresh_user();
                let cat = U256::from(owner);
                let tx = self.fx.call_tx(
                    owner,
                    "CryptoCat",
                    "createSaleAuction",
                    &[
                        cat,
                        U256::from(1000u64),
                        U256::from(100u64),
                        U256::from(3600u64),
                    ],
                );
                (tx, TxSeedKind::Other { sender: owner })
            }
            token => self.erc20_transfer(token, None, None),
        }
    }

    /// An independent call routed to a specific contract (hotspot focus).
    fn focused_call(&mut self, name: &'static str) -> (Transaction, TxSeedKind) {
        match name {
            "UniswapV2Router02" | "SwapRouter" => {
                let sender = self.fresh_user();
                self.swap_tx(name, sender)
            }
            "CryptoCat" => {
                let owner = self.fresh_user();
                let cat = U256::from(owner);
                let tx = self.fx.call_tx(
                    owner,
                    "CryptoCat",
                    "createSaleAuction",
                    &[
                        cat,
                        U256::from(1000u64),
                        U256::from(100u64),
                        U256::from(3600u64),
                    ],
                );
                (tx, TxSeedKind::Other { sender: owner })
            }
            token => self.erc20_transfer(token, None, None),
        }
    }

    fn erc20_transfer(
        &mut self,
        contract: &'static str,
        forced_sender: Option<u64>,
        forced_recipient: Option<u64>,
    ) -> (Transaction, TxSeedKind) {
        let sender = forced_sender.unwrap_or_else(|| self.fresh_user());
        let recipient = forced_recipient.unwrap_or_else(|| self.fresh_user());
        // Values below 1000 keep TetherUSD's fee at zero, avoiding
        // accidental owner-balance contention on independent transfers.
        let amount = U256::from(self.rng.random_range(1..999));
        let tx = self.fx.call_tx(
            sender,
            contract,
            "transfer",
            &[Fixture::user_address(recipient).to_u256(), amount],
        );
        (
            tx,
            TxSeedKind::Erc20 {
                contract,
                sender,
                recipient,
            },
        )
    }

    fn swap_tx(&mut self, router: &'static str, sender: u64) -> (Transaction, TxSeedKind) {
        let (tin, tout) = Fixture::user_pair(sender);
        let tx = self.fx.call_tx(
            sender,
            router,
            "swapExactTokens",
            &[
                tin.to_u256(),
                tout.to_u256(),
                U256::from(self.rng.random_range(1_000..100_000)),
                U256::ZERO,
            ],
        );
        let _ = router;
        (tx, TxSeedKind::Swap { sender })
    }

    /// Emits a transaction conflicting with the chosen earlier one.
    ///
    /// The conflicting transaction keeps the block's natural contract mix:
    /// most conflicts come from reusing the target's *sender* (a nonce
    /// ordering) on a freshly drawn call; the rest write the same token
    /// balance or swap the same pair.
    fn dependent_tx(&mut self, seeds: &[TxSeedKind], target: usize) -> (Transaction, TxSeedKind) {
        let tseed = seeds[target].clone();
        // Same-recipient balance conflict, when the target was a token
        // transfer.
        if let TxSeedKind::Erc20 {
            contract,
            recipient,
            ..
        } = tseed
        {
            if self.rng.random_bool(0.3) {
                return self.erc20_transfer(contract, None, Some(recipient));
            }
        }
        let sender = match tseed {
            TxSeedKind::Erc20 { sender, .. }
            | TxSeedKind::Swap { sender }
            | TxSeedKind::Other { sender } => sender,
        };
        // Forced-sender call drawn from the natural mix (ballot excluded:
        // double votes revert).
        match self.pick_weighted(&[
            "Tether USD",
            "FiatTokenProxy",
            "LinkToken",
            "Dai",
            "WETH9",
            "UniswapV2Router02",
            "SwapRouter",
            "OpenSea",
            "MainchainGatewayProxy",
            "CryptoCat",
        ]) {
            "UniswapV2Router02" => self.swap_tx("UniswapV2Router02", sender),
            "SwapRouter" => self.swap_tx("SwapRouter", sender),
            "OpenSea" => {
                let salt = self.rng.random_range(0..u32::MAX as u64);
                let tx = self.fx.call_tx(
                    sender,
                    "OpenSea",
                    "atomicMatch",
                    &[
                        Fixture::user_address(sender).to_u256(),
                        mtpu_contracts::addresses::token(1).to_u256(),
                        U256::from(salt),
                        U256::from(500u64),
                        U256::from(salt),
                    ],
                );
                (tx, TxSeedKind::Other { sender })
            }
            "MainchainGatewayProxy" => {
                let tx = self.fx.call_tx(
                    sender,
                    "MainchainGatewayProxy",
                    "deposit",
                    &[
                        mtpu_contracts::addresses::token(0).to_u256(),
                        U256::from(self.rng.random_range(1..1000)),
                    ],
                );
                (tx, TxSeedKind::Other { sender })
            }
            "CryptoCat" => {
                let cat = U256::from(sender);
                let tx = self.fx.call_tx(
                    sender,
                    "CryptoCat",
                    "createSaleAuction",
                    &[
                        cat,
                        U256::from(900u64),
                        U256::from(90u64),
                        U256::from(1800u64),
                    ],
                );
                (tx, TxSeedKind::Other { sender })
            }
            token => self.erc20_transfer(token, Some(sender), None),
        }
    }
}
