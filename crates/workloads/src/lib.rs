//! Synthetic Ethereum-like workload generation and block preparation for
//! the MTPU evaluation.

mod gen;
mod prepare;
mod zipf;

pub use gen::{BlockConfig, Generator};
pub use prepare::{prepare_block, PreparedBlock};
pub use zipf::{ZipfConfig, ZipfGen, ZipfSampler};

impl Generator {
    /// Generates a block, prepares it against the current fixture state,
    /// and advances the fixture to the post-block state — the way the
    /// benchmark harness consumes consecutive blocks.
    pub fn prepared_block(&mut self, cfg: &BlockConfig) -> PreparedBlock {
        let block = self.block(cfg);
        let prepared = prepare_block(&self.fx.state, block);
        self.fx.state = prepared.state_after.clone();
        prepared
    }
}
