//! Block preparation: the consensus-stage work of the three-stage model.
//!
//! The elected node executes the block (we record traces), discovers the
//! dependency DAG and ships both with the block; the executing nodes then
//! drive the accelerator from exactly this data.

use mtpu::hotspot::ContractTable;
use mtpu::pu::TxJob;
use mtpu::sched::DepGraph;
use mtpu::stream::StreamTransforms;
use mtpu::MtpuConfig;
use mtpu_evm::state::State;
use mtpu_evm::trace::TxTrace;
use mtpu_evm::trace_transaction;
use mtpu_evm::tx::{Block, Receipt};

/// A block plus everything the execution stage needs.
#[derive(Debug, Clone)]
pub struct PreparedBlock {
    /// The block.
    pub block: Block,
    /// World state *before* the block.
    pub state_before: State,
    /// World state *after* sequential execution (the consensus result all
    /// schedules must reproduce).
    pub state_after: State,
    /// Receipts of the sequential execution.
    pub receipts: Vec<Receipt>,
    /// Recorded execution traces.
    pub traces: Vec<TxTrace>,
    /// The dependency DAG (serialized into the block per the paper).
    pub graph: DepGraph,
}

/// Executes `block` sequentially from `state`, recording traces and
/// building the DAG.
///
/// # Panics
///
/// Panics if any transaction is invalid (the generator only produces
/// valid ones).
pub fn prepare_block(state: &State, block: Block) -> PreparedBlock {
    let state_before = state.clone();
    let mut st = state.clone();
    let mut receipts = Vec::with_capacity(block.transactions.len());
    let mut traces = Vec::with_capacity(block.transactions.len());
    for tx in &block.transactions {
        let (r, t) =
            trace_transaction(&mut st, &block.header, tx).expect("generated txs are valid");
        receipts.push(r);
        traces.push(t);
    }
    let graph = DepGraph::from_conflicts(&block.transactions, &traces);
    PreparedBlock {
        block,
        state_before,
        state_after: st,
        receipts,
        traces,
        graph,
    }
}

impl PreparedBlock {
    /// Realized fraction of dependent transactions.
    pub fn dependent_ratio(&self) -> f64 {
        self.graph.dependent_ratio()
    }

    /// Fraction of successfully executed transactions.
    pub fn success_ratio(&self) -> f64 {
        if self.receipts.is_empty() {
            return 1.0;
        }
        self.receipts.iter().filter(|r| r.success).count() as f64 / self.receipts.len() as f64
    }

    /// Builds timing jobs for every transaction under `cfg`, applying
    /// hotspot transforms from `table` when provided — but only to
    /// transactions heard during dissemination (`cfg.preknown_pct`,
    /// paper §3.4.2): pre-execution and prefetching need the transaction
    /// before the block arrives.
    pub fn jobs(&self, cfg: &MtpuConfig, table: Option<&ContractTable>) -> Vec<TxJob> {
        self.traces
            .iter()
            .enumerate()
            .map(|(i, trace)| match table {
                Some(t) if cfg.hotspot_opt && mtpu::config::is_preknown(cfg, i) => {
                    let (tr, loaded) = t.transforms_for(trace);
                    TxJob::build_with_override(trace, cfg, &tr, loaded)
                }
                _ => TxJob::build(trace, cfg, &StreamTransforms::none()),
            })
            .collect()
    }

    /// Teaches `table` every (contract, entry) of this block — the block
    /// interval's offline optimization pass.
    pub fn learn_hotspots(&self, table: &mut ContractTable, state: &State) {
        for trace in &self.traces {
            table.record_invocation(trace);
        }
        for trace in &self.traces {
            if let Some(top) = trace.top_frame() {
                let code = state.code(top.code_address).to_vec();
                if !code.is_empty() {
                    table.learn(trace, &code);
                }
            }
        }
    }
}
