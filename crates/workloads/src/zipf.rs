//! Zipfian transaction streams for mempool and node-pipeline workloads.
//!
//! Block generation ([`crate::Generator`]) aims for a *dependency ratio*
//! inside one pre-assembled block. The mempool needs something different:
//! an open-ended stream whose *senders* follow the heavy-tailed
//! popularity observed on mainnet (a few accounts submit most
//! transactions) and whose *recipients* concentrate on a few hot
//! accounts, so per-sender nonce chains, fee eviction and the packer's
//! conflict avoidance all get exercised by the same stream.
//!
//! Sender ranks are drawn from a Zipf distribution (probability of rank
//! *r* ∝ 1/*r*^θ) via an inverse-CDF table and binary search — exact, no
//! rejection loop, and deterministic from the seed.

use mtpu_contracts::fixture::USER_COUNT;
use mtpu_contracts::Fixture;
use mtpu_evm::state::State;
use mtpu_evm::tx::Transaction;
use mtpu_primitives::{SplitMix64, U256};

/// Shape of a Zipfian transaction stream.
#[derive(Debug, Clone)]
pub struct ZipfConfig {
    /// Distinct senders (Zipf ranks). Clamped to the fixture's user count
    /// minus the hot-recipient reserve.
    pub senders: u64,
    /// Zipf exponent θ: 0 is uniform; ≈1 matches classic web/mainnet
    /// popularity; larger is more skewed.
    pub theta: f64,
    /// Fraction of token transfers aimed at one of the hot recipients
    /// (their balance slots become contended storage).
    pub hot_ratio: f64,
    /// Number of hot recipient accounts.
    pub hot_slots: u64,
    /// Fraction of transactions that are ERC20 token calls; the rest are
    /// plain value transfers.
    pub sct_ratio: f64,
    /// Gas prices are drawn uniformly from `1..=max_fee`, giving the
    /// pool's fee ordering, eviction and replace-by-fee something to sort.
    pub max_fee: u64,
    /// Total distinct accounts the stream draws from (senders, uniform
    /// recipients and hot recipients all live inside it). `0` keeps the
    /// fixture's built-in [`USER_COUNT`]; larger universes are
    /// provisioned on the fly via [`Fixture::ensure_users`], scaling the
    /// stream to millions of distinct accounts.
    pub universe: u64,
    /// Distinct uniform-recipient accounts (ids `0..recipients`). `0`
    /// mirrors the sender count — the historical behavior.
    pub recipients: u64,
}

impl Default for ZipfConfig {
    fn default() -> Self {
        ZipfConfig {
            senders: 256,
            theta: 1.0,
            hot_ratio: 0.2,
            hot_slots: 4,
            sct_ratio: 0.7,
            max_fee: 100,
            universe: 0,
            recipients: 0,
        }
    }
}

/// A self-contained Zipf rank sampler: the inverse-CDF table plus its own
/// deterministic RNG, with none of [`ZipfGen`]'s fixture world attached.
/// Cheap enough to build one per reader thread — key-popularity skew for
/// read workloads, sender popularity for write streams.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative Zipf mass per rank, normalized to 1.0 at the end.
    cdf: Vec<f64>,
    rng: SplitMix64,
}

impl ZipfSampler {
    /// A sampler over `ranks` ranks with exponent `theta` (0 = uniform,
    /// ≈1 = classic popularity skew), deterministic from `seed`.
    pub fn new(seed: u64, ranks: u64, theta: f64) -> Self {
        let ranks = ranks.max(1);
        let mut cdf = Vec::with_capacity(ranks as usize);
        let mut total = 0.0f64;
        for r in 1..=ranks {
            total += 1.0 / (r as f64).powf(theta);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler {
            cdf,
            rng: SplitMix64::seed_from_u64(seed),
        }
    }

    /// Number of ranks the sampler draws from.
    pub fn ranks(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// The rank a unit-interval draw lands on (pure inverse CDF; rank 0
    /// is the most popular).
    pub fn rank_of(&self, u: f64) -> u64 {
        self.cdf.partition_point(|&c| c < u) as u64
    }

    /// Draws the next rank from the sampler's own RNG.
    pub fn sample(&mut self) -> u64 {
        let u = (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.rank_of(u)
    }
}

/// A deterministic Zipfian transaction stream over a deployed
/// [`Fixture`] world.
#[derive(Debug)]
pub struct ZipfGen {
    /// The deployed world (nonces advance as transactions are drawn).
    pub fx: Fixture,
    cfg: ZipfConfig,
    rng: SplitMix64,
    /// Sender ranks (only the inverse-CDF side; draws come from `rng` so
    /// the stream stays bit-compatible with the pre-sampler behavior).
    sampler: ZipfSampler,
}

impl ZipfGen {
    /// A stream with the given shape and seed. Universes beyond the
    /// fixture's built-in users are provisioned before the first draw.
    pub fn new(seed: u64, mut cfg: ZipfConfig) -> Self {
        if cfg.universe == 0 {
            cfg.universe = USER_COUNT;
        }
        cfg.universe = cfg.universe.max(2);
        let reserve = cfg.hot_slots.min(cfg.universe / 2);
        cfg.hot_slots = reserve;
        cfg.senders = cfg.senders.clamp(1, cfg.universe - reserve);
        if cfg.recipients == 0 {
            cfg.recipients = cfg.senders;
        }
        cfg.recipients = cfg.recipients.clamp(1, cfg.universe - reserve);
        let sampler = ZipfSampler::new(seed, cfg.senders, cfg.theta);
        let mut fx = Fixture::new();
        fx.ensure_users(cfg.universe);
        ZipfGen {
            fx,
            cfg,
            rng: SplitMix64::seed_from_u64(seed),
            sampler,
        }
    }

    /// The seeded genesis state transactions should be admitted against.
    pub fn genesis_state(&self) -> &State {
        &self.fx.state
    }

    /// The active configuration (after clamping).
    pub fn config(&self) -> &ZipfConfig {
        &self.cfg
    }

    /// A uniform draw from the unit interval (53 mantissa bits).
    fn unit(&mut self) -> f64 {
        (self.rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Draws a sender user id: Zipf rank via binary search on the CDF.
    /// Rank 0 is the most active sender.
    pub fn sample_sender(&mut self) -> u64 {
        let u = self.unit();
        self.sampler.rank_of(u)
    }

    /// Draws a recipient user id: hot with probability `hot_ratio`, else
    /// uniform over `0..recipients`. Hot recipients live at the top of
    /// the universe, disjoint from the sender ranks.
    fn sample_recipient(&mut self) -> u64 {
        if self.cfg.hot_slots > 0 && self.rng.random_bool(self.cfg.hot_ratio) {
            self.cfg.universe - 1 - self.rng.random_range(0..self.cfg.hot_slots)
        } else {
            self.rng.random_range(0..self.cfg.recipients)
        }
    }

    /// The next transaction of the stream: a valid, nonce-ordered
    /// transaction from a Zipf-ranked sender with a uniform `1..=max_fee`
    /// gas price. Never exhausts — callers bound the stream by count.
    pub fn next_tx(&mut self) -> Transaction {
        let sender = self.sample_sender();
        let recipient = self.sample_recipient();
        let mut tx = if self.rng.random_bool(self.cfg.sct_ratio) {
            // Values below 1000 keep TetherUSD's fee at zero so the only
            // deliberately contended slot is the hot recipient's balance.
            let amount = U256::from(self.rng.random_range(1..999));
            self.fx.call_tx(
                sender,
                "Tether USD",
                "transfer",
                &[Fixture::user_address(recipient).to_u256(), amount],
            )
        } else {
            let nonce = self.fx.next_nonce(sender);
            Transaction::transfer(
                Fixture::user_address(sender),
                Fixture::user_address(recipient),
                U256::from(self.rng.random_range(1..1000)),
                nonce,
            )
        };
        tx.gas_price = U256::from(self.rng.random_range(1..self.cfg.max_fee.max(1) + 1));
        tx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let mut g = ZipfGen::new(7, ZipfConfig::default());
        let mut counts = HashMap::new();
        let draws = 20_000;
        for _ in 0..draws {
            *counts.entry(g.sample_sender()).or_insert(0u64) += 1;
        }
        let top = counts.get(&0).copied().unwrap_or(0);
        let uniform = draws / g.config().senders;
        assert!(
            top > uniform * 10,
            "rank 0 drew {top}, uniform share is {uniform}"
        );
        // And the tail still appears: a healthy spread, not a point mass.
        assert!(counts.len() > 100, "only {} distinct senders", counts.len());
    }

    #[test]
    fn nonces_are_contiguous_per_sender() {
        let mut g = ZipfGen::new(11, ZipfConfig::default());
        let mut next: HashMap<_, u64> = HashMap::new();
        for _ in 0..2_000 {
            let tx = g.next_tx();
            let want = next.entry(tx.from).or_insert(0);
            assert_eq!(tx.nonce, *want, "nonce gap for {:?}", tx.from);
            *want += 1;
        }
    }

    #[test]
    fn stream_is_deterministic() {
        let mut a = ZipfGen::new(42, ZipfConfig::default());
        let mut b = ZipfGen::new(42, ZipfConfig::default());
        for _ in 0..500 {
            assert_eq!(a.next_tx(), b.next_tx());
        }
    }

    #[test]
    fn scaled_universe_reaches_beyond_the_builtin_users() {
        let cfg = ZipfConfig {
            senders: 4096,
            universe: 8192,
            recipients: 8000,
            hot_slots: 8,
            hot_ratio: 0.3,
            ..ZipfConfig::default()
        };
        let mut g = ZipfGen::new(21, cfg);
        assert_eq!(g.config().senders, 4096);
        assert_eq!(g.config().recipients, 8000);
        assert_eq!(g.fx.user_count(), 8192);
        let mut saw_big_sender = false;
        let mut saw_hot_top = false;
        for _ in 0..5_000 {
            let tx = g.next_tx();
            saw_big_sender |= tx.from >= Fixture::user_address(USER_COUNT);
            // Hot recipients sit at the top of the 8192-account universe;
            // both transfer flavors encode the recipient differently, so
            // just check some sender beyond the builtin range shows up and
            // nonces stay contiguous (checked by construction).
            saw_hot_top |= tx.from >= Fixture::user_address(8192 - 8);
        }
        assert!(saw_big_sender, "no sender beyond the builtin user range");
        let _ = saw_hot_top; // hot ids are recipients, senders rarely reach them
    }

    #[test]
    fn default_universe_matches_the_historical_stream() {
        // The new fields default to the historical behavior: same clamps,
        // same draw sequence.
        let mut a = ZipfGen::new(42, ZipfConfig::default());
        assert_eq!(a.config().universe, USER_COUNT);
        assert_eq!(a.config().recipients, a.config().senders);
        assert_eq!(a.fx.user_count(), USER_COUNT);
        let mut b = ZipfGen::new(
            42,
            ZipfConfig {
                universe: USER_COUNT,
                recipients: 256,
                ..ZipfConfig::default()
            },
        );
        for _ in 0..200 {
            assert_eq!(a.next_tx(), b.next_tx());
        }
    }

    #[test]
    fn standalone_sampler_matches_the_stream_sender_skew() {
        // The fixture-free sampler and ZipfGen share one inverse-CDF
        // construction: identical seeds give identical rank sequences.
        let mut solo = ZipfSampler::new(7, 256, 1.0);
        let mut g = ZipfGen::new(7, ZipfConfig::default());
        for _ in 0..1_000 {
            assert_eq!(solo.sample(), g.sample_sender());
        }
        // And it skews: rank 0 dominates a uniform share.
        let mut fresh = ZipfSampler::new(13, 256, 1.0);
        let draws = 20_000;
        let top = (0..draws).filter(|_| fresh.sample() == 0).count() as u64;
        assert!(top > 10 * draws / 256, "rank 0 drew only {top}");
    }

    #[test]
    fn fees_span_the_configured_range() {
        let mut g = ZipfGen::new(3, ZipfConfig::default());
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2_000 {
            let fee = g.next_tx().gas_price;
            assert!(fee >= U256::ONE && fee <= U256::from(100u64));
            seen_low |= fee <= U256::from(10u64);
            seen_high |= fee >= U256::from(90u64);
        }
        assert!(seen_low && seen_high);
    }
}
