//! DepGraph properties on *generated* blocks: acyclicity, edge direction
//! and determinism of construction from the same traces.

use mtpu::sched::DepGraph;
use mtpu_workloads::{BlockConfig, Generator};

fn config(tx_count: usize, dependent_ratio: f64) -> BlockConfig {
    BlockConfig {
        tx_count,
        dependent_ratio,
        erc20_ratio: None,
        sct_ratio: 0.9,
        chain_bias: 0.5,
        focus: None,
    }
}

/// Edges always point forward in block order, which makes the graph
/// acyclic by construction — verify on real generated blocks.
#[test]
fn generated_blocks_are_acyclic() {
    for (seed, ratio) in [(1u64, 0.0), (2, 0.3), (3, 0.7), (4, 1.0)] {
        let mut gen = Generator::new(seed);
        let block = gen.prepared_block(&config(48, ratio));
        let g = &block.graph;
        assert_eq!(g.len(), 48);
        for j in 0..g.len() {
            for &p in g.parents(j) {
                assert!((p as usize) < j, "edge {p} -> {j} must point forward");
            }
            for &c in g.children(j) {
                assert!(j < c as usize, "edge {j} -> {c} must point forward");
            }
        }
        // parents/children are mirror images.
        for j in 0..g.len() {
            for &p in g.parents(j) {
                assert!(g.children(p as usize).contains(&(j as u32)));
            }
        }
    }
}

/// Building the DAG twice from the same block and traces yields the same
/// edges in the same order.
#[test]
fn construction_is_deterministic_on_generated_blocks() {
    let mut gen = Generator::new(77);
    let block = gen.prepared_block(&config(64, 0.4));
    let a = DepGraph::from_conflicts(&block.block.transactions, &block.traces);
    let b = DepGraph::from_conflicts(&block.block.transactions, &block.traces);
    for i in 0..a.len() {
        assert_eq!(a.parents(i), b.parents(i));
        assert_eq!(a.children(i), b.children(i));
    }
}

/// The generator's dependent-ratio knob is reflected in the DAG (within
/// tolerance: collisions can add accidental edges).
#[test]
fn dependent_ratio_tracks_config() {
    let mut gen = Generator::new(5);
    let independent = gen.prepared_block(&config(64, 0.0));
    let mut gen = Generator::new(5);
    let dependent = gen.prepared_block(&config(64, 1.0));
    assert!(independent.graph.dependent_ratio() <= dependent.graph.dependent_ratio());
    assert!(dependent.graph.dependent_ratio() > 0.5);
}
