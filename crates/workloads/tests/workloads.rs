//! Workload-generator validation: generated blocks must execute cleanly
//! and realize the requested distributional knobs.

use mtpu_workloads::{prepare_block, BlockConfig, Generator};

#[test]
fn blocks_execute_successfully() {
    let mut g = Generator::new(42);
    let block = g.block(&BlockConfig {
        tx_count: 120,
        dependent_ratio: 0.3,
        erc20_ratio: None,
        sct_ratio: 0.9,
        chain_bias: 0.8,
        focus: None,
    });
    let prepared = prepare_block(&g.fx.state, block);
    assert!(
        prepared.success_ratio() > 0.98,
        "workload txs must succeed: {}",
        prepared.success_ratio()
    );
    assert_ne!(
        prepared.state_before.state_root(),
        prepared.state_after.state_root()
    );
}

#[test]
fn dependent_ratio_tracks_target() {
    let mut g = Generator::new(7);
    for &target in &[0.0, 0.4, 0.8] {
        let prepared = g.prepared_block(&BlockConfig {
            tx_count: 150,
            dependent_ratio: target,
            erc20_ratio: None,
            sct_ratio: 1.0,
            chain_bias: 0.8,
            focus: None,
        });
        let realized = prepared.dependent_ratio();
        assert!(
            prepared.success_ratio() > 0.97,
            "{}",
            prepared.success_ratio()
        );
        assert!(
            (realized - target).abs() < 0.18,
            "target {target} realized {realized}"
        );
    }
}

#[test]
fn zero_dependency_blocks_are_fully_parallel() {
    let mut g = Generator::new(9);
    let block = g.block(&BlockConfig {
        tx_count: 100,
        dependent_ratio: 0.0,
        erc20_ratio: None,
        sct_ratio: 1.0,
        chain_bias: 0.8,
        focus: None,
    });
    let prepared = prepare_block(&g.fx.state, block);
    assert!(
        prepared.dependent_ratio() < 0.1,
        "realized {}",
        prepared.dependent_ratio()
    );
    assert!(prepared.graph.critical_path_len() <= 4);
}

#[test]
fn erc20_ratio_controls_token_share() {
    let mut g = Generator::new(11);
    let erc20_set = ["Tether USD", "FiatTokenProxy", "LinkToken", "Dai", "WETH9"];
    let addresses: Vec<_> = erc20_set.iter().map(|n| g.fx.spec(n).address).collect();
    for &(target, lo, hi) in &[(1.0, 0.95, 1.0), (0.5, 0.3, 0.7), (0.0, 0.0, 0.05)] {
        let block = g.block(&BlockConfig {
            tx_count: 200,
            dependent_ratio: 0.0,
            erc20_ratio: Some(target),
            sct_ratio: 1.0,
            chain_bias: 0.8,
            focus: None,
        });
        let erc20 = block
            .transactions
            .iter()
            .filter(|t| t.to.map(|a| addresses.contains(&a)).unwrap_or(false))
            .count() as f64
            / block.transactions.len() as f64;
        assert!(
            (lo..=hi).contains(&erc20),
            "target {target}: measured {erc20}"
        );
    }
}

#[test]
fn generation_is_deterministic() {
    let mk = || {
        let mut g = Generator::new(123);
        let b = g.block(&BlockConfig::default());
        b.transactions.iter().map(|t| t.hash()).collect::<Vec<_>>()
    };
    assert_eq!(mk(), mk());
}

#[test]
fn consecutive_blocks_have_fresh_nonces() {
    let mut g = Generator::new(5);
    let b1 = g.block(&BlockConfig::default());
    let p1 = prepare_block(&g.fx.state, b1);
    // Execute block 1 into the fixture state, then block 2 must validate.
    g.fx.state = p1.state_after.clone();
    let b2 = g.block(&BlockConfig::default());
    let p2 = prepare_block(&g.fx.state, b2);
    assert!(p2.success_ratio() > 0.98, "{}", p2.success_ratio());
}

#[test]
fn focus_routes_transactions() {
    let mut g = Generator::new(17);
    let target = g.fx.spec("Dai").address;
    let block = g.block(&BlockConfig {
        tx_count: 200,
        dependent_ratio: 0.0,
        erc20_ratio: None,
        sct_ratio: 1.0,
        chain_bias: 0.8,
        focus: Some(("Dai", 0.7)),
    });
    let share = block
        .transactions
        .iter()
        .filter(|t| t.to == Some(target))
        .count() as f64
        / block.transactions.len() as f64;
    assert!((0.6..=0.85).contains(&share), "focused share {share}");
}
