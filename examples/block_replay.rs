//! Block replay: generate a synthetic Ethereum-like block, discover its
//! dependency DAG (the consensus stage), and compare the four execution
//! pipelines of the paper — sequential, synchronous parallel,
//! spatial-temporal, and spatial-temporal with all optimizations.
//!
//! ```sh
//! cargo run --release --example block_replay [tx_count] [dependent_ratio]
//! ```

use mtpu_repro::mtpu::hotspot::ContractTable;
use mtpu_repro::mtpu::sched::{simulate_sequential, simulate_st, simulate_sync};
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::workloads::{BlockConfig, Generator};

fn main() {
    let mut args = std::env::args().skip(1);
    let tx_count: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(128);
    let dependent_ratio: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.3);

    let mut generator = Generator::new(7);
    // Warm-up block: the hotspot optimizer learns execution paths during
    // the block interval (three-stage model, paper Fig. 4).
    let mut table = ContractTable::new();
    let warm = generator.prepared_block(&BlockConfig::default());
    warm.learn_hotspots(&mut table, &warm.state_before);

    let block = generator.prepared_block(&BlockConfig {
        tx_count,
        dependent_ratio,
        erc20_ratio: None,
        sct_ratio: 0.95,
        chain_bias: 0.8,
        focus: None,
    });
    println!(
        "block: {} txs, realized dependent ratio {:.0}%, DAG critical path {}",
        tx_count,
        100.0 * block.dependent_ratio(),
        block.graph.critical_path_len()
    );
    println!(
        "sequential reference: {} gas, state root {}",
        block.receipts.iter().map(|r| r.gas_used).sum::<u64>(),
        block.state_after.state_root()
    );

    let base_cfg = MtpuConfig::baseline();
    let seq = simulate_sequential(&block.jobs(&base_cfg, None), &base_cfg);
    println!("\n{:<38} {:>10} cycles  speedup", "pipeline", seq.makespan);

    let report = |name: &str, makespan: u64, util: f64| {
        println!(
            "{name:<38} {makespan:>10} cycles  {:>5.2}x  (util {:.0}%)",
            seq.makespan as f64 / makespan as f64,
            100.0 * util
        );
    };

    let sync_cfg = MtpuConfig {
        redundancy_opt: false,
        ..MtpuConfig::default()
    };
    let sync = simulate_sync(&block.jobs(&sync_cfg, None), &block.graph, &sync_cfg);
    report("synchronous, 4 PUs", sync.makespan, sync.utilization());

    let st = simulate_st(&block.jobs(&sync_cfg, None), &block.graph, &sync_cfg);
    report("spatial-temporal, 4 PUs", st.makespan, st.utilization());

    // The ST policy pairs with redundancy reuse (paper §3.1: redundant
    // transactions are herded onto one PU *so that* contexts can be
    // reused) — this is its intended configuration.
    let red_cfg = MtpuConfig {
        redundancy_opt: true,
        ..MtpuConfig::default()
    };
    let red = simulate_st(&block.jobs(&red_cfg, None), &block.graph, &red_cfg);
    report(
        "spatial-temporal + redundancy",
        red.makespan,
        red.utilization(),
    );

    let full_cfg = MtpuConfig {
        redundancy_opt: true,
        hotspot_opt: true,
        ..MtpuConfig::default()
    };
    let full = simulate_st(
        &block.jobs(&full_cfg, Some(&table)),
        &block.graph,
        &full_cfg,
    );
    report(
        "spatial-temporal + redundancy + hotspot",
        full.makespan,
        full.utilization(),
    );

    assert!(block.graph.schedule_respects_dag(&full.start, &full.end));
    println!("\nall schedules respect the dependency DAG (serializable).");
}
