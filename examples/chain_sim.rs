//! Multi-block chain simulation: a validating node with an attached MTPU
//! processes consecutive blocks end to end (the paper's Fig. 4 pipeline),
//! with the Contract Table warming up across block intervals.
//!
//! Each block is additionally executed in parallel (`parexec`) and its
//! delta committed *incrementally* into a file-backed Merkle Patricia
//! Trie; the resulting root must match the node's from-scratch
//! commitment, and roots chain parent-to-child block to block. After the
//! run the store is reopened to show the chain survives restart.
//!
//! ```sh
//! cargo run --release --example chain_sim [blocks]
//! ```

use mtpu_repro::evm::commit_block_delta;
use mtpu_repro::mtpu::{MtpuConfig, Node};
use mtpu_repro::parexec::ParExecutor;
use mtpu_repro::statedb::{FileStore, StateCommitter};
use mtpu_repro::workloads::{BlockConfig, Generator};

fn short(root: mtpu_repro::primitives::B256) -> String {
    let s = root.to_string();
    format!("{}..{}", &s[..10], &s[s.len() - 4..])
}

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    let mut generator = Generator::new(31);
    let config = MtpuConfig {
        redundancy_opt: true,
        hotspot_opt: true,
        ..MtpuConfig::default()
    };
    let mut node = Node::new(generator.fx.state.clone(), config);
    let executor = ParExecutor::new(4);

    let store_dir = std::env::temp_dir().join(format!("mtpu-chain-sim-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut committer = StateCommitter::new(FileStore::open(&store_dir).expect("open node store"));
    // Seed the trie with genesis so block deltas commit incrementally.
    mtpu_repro::evm::commit_full(&mut committer, &node.state);
    let genesis_root = committer.persist().expect("persist genesis");
    assert_eq!(genesis_root, node.merkle_root());

    println!(
        "{:>5} {:>6} {:>8} {:>10} {:>9} {:>9} {:>8}  {:<16}",
        "block", "txs", "dep%", "cycles", "speedup", "hotspot%", "util%", "state root"
    );
    let mut parent_root = genesis_root;
    for _ in 0..blocks {
        let block = generator.block(&BlockConfig {
            tx_count: 96,
            dependent_ratio: 0.25,
            erc20_ratio: None,
            sct_ratio: 0.92,
            chain_bias: 0.8,
            focus: None,
        });
        let base = node.state.clone();
        let report = node.process_block(&block).expect("valid block");
        // Keep the generator's fixture state in sync with the chain.
        generator.fx.state = node.state.clone();

        // Parent linkage: the chain of commitments must be unbroken.
        assert_eq!(report.parent_merkle_root, parent_root, "root chain broken");
        parent_root = report.merkle_root;

        // Parallel execution + incremental trie commit must land on the
        // same 32 bytes as the node's sequential from-scratch commitment.
        let hashed_before = committer.stats().nodes_hashed;
        let result = executor.execute_block(&base, &block);
        let incremental = commit_block_delta(&mut committer, &base, &result.delta);
        committer.persist().expect("persist block");
        assert_eq!(incremental, report.merkle_root, "trie commit diverged");
        let dirty = committer.stats().nodes_hashed - hashed_before;

        println!(
            "{:>5} {:>6} {:>7.0}% {:>10} {:>8.2}x {:>8.0}% {:>7.0}%  {:<16} ({dirty} nodes rehashed)",
            report.height,
            block.transactions.len(),
            100.0 * report.dependent_ratio,
            report.schedule.makespan,
            report.speedup(),
            100.0 * report.hotspot_coverage,
            100.0 * report.schedule.utilization(),
            short(report.merkle_root),
        );
    }

    // Restart survival: reopen the store and resume at the same root.
    let total_nodes = {
        use mtpu_repro::statedb::NodeStore;
        committer.store().node_count()
    };
    drop(committer);
    let mut reopened = StateCommitter::new(FileStore::open(&store_dir).expect("reopen store"));
    let resumed = reopened.commit();
    assert_eq!(resumed, parent_root, "reopened store lost the chain head");
    println!(
        "\nstore reopened from {}: root {} resumed across restart ({total_nodes} nodes on disk)",
        store_dir.display(),
        short(resumed),
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    println!(
        "\nBlock 1 runs with a cold Contract Table; from block 2 on the block\n\
         interval has learned the hotspot paths and the speedup settles higher\n\
         (the paper's offline deep-optimization loop, §3.4)."
    );
}
