//! Multi-block chain simulation: a validating node with an attached MTPU
//! processes consecutive blocks end to end (the paper's Fig. 4 pipeline),
//! with the Contract Table warming up across block intervals.
//!
//! ```sh
//! cargo run --release --example chain_sim [blocks]
//! ```

use mtpu_repro::mtpu::{MtpuConfig, Node};
use mtpu_repro::workloads::{BlockConfig, Generator};

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    let mut generator = Generator::new(31);
    let config = MtpuConfig {
        redundancy_opt: true,
        hotspot_opt: true,
        ..MtpuConfig::default()
    };
    let mut node = Node::new(generator.fx.state.clone(), config);

    println!(
        "{:>5} {:>6} {:>8} {:>10} {:>9} {:>9} {:>8}",
        "block", "txs", "dep%", "cycles", "speedup", "hotspot%", "util%"
    );
    for _ in 0..blocks {
        let block = generator.block(&BlockConfig {
            tx_count: 96,
            dependent_ratio: 0.25,
            erc20_ratio: None,
            sct_ratio: 0.92,
            chain_bias: 0.8,
            focus: None,
        });
        let report = node.process_block(&block).expect("valid block");
        // Keep the generator's fixture state in sync with the chain.
        generator.fx.state = node.state.clone();
        println!(
            "{:>5} {:>6} {:>7.0}% {:>10} {:>8.2}x {:>8.0}% {:>7.0}%",
            report.height,
            block.transactions.len(),
            100.0 * report.dependent_ratio,
            report.schedule.makespan,
            report.speedup(),
            100.0 * report.hotspot_coverage,
            100.0 * report.schedule.utilization(),
        );
    }
    println!(
        "\nBlock 1 runs with a cold Contract Table; from block 2 on the block\n\
         interval has learned the hotspot paths and the speedup settles higher\n\
         (the paper's offline deep-optimization loop, §3.4)."
    );
}
