//! Multi-block chain simulation: a validating node with an attached MTPU
//! processes consecutive blocks end to end (the paper's Fig. 4 pipeline),
//! with the Contract Table warming up across block intervals.
//!
//! Each block is additionally executed in parallel (`parexec`) and its
//! delta committed *incrementally* into a file-backed Merkle Patricia
//! Trie. Both commitments are **pipelined**: block N's trie hashing and
//! store sync run on background commit threads while block N+1 is
//! generated and executed, and the roots are only joined one block later
//! — where they must match the node's chained commitment bit for bit.
//! After the run the store is reopened to show the chain survives
//! restart.
//!
//! The flat accounts store rides along: every committed delta is also
//! absorbed into an [`AccountsDb`] whose background flush trails the
//! chain, and at the end a snapshot → restore round-trip shows the flat
//! store reopens at the same head as the trie.
//!
//! ```sh
//! cargo run --release --example chain_sim [blocks]
//! ```

use mtpu_repro::accountsdb::{AccountsDb, FlushService};
use mtpu_repro::evm::{AsyncCommitter, CommitHandle};
use mtpu_repro::mtpu::{MtpuConfig, Node, PendingBlock};
use mtpu_repro::parexec::ParExecutor;
use mtpu_repro::statedb::{FileStore, StateCommitter};
use mtpu_repro::workloads::{BlockConfig, Generator};
use std::sync::Arc;

fn short(root: mtpu_repro::primitives::B256) -> String {
    let s = root.to_string();
    format!("{}..{}", &s[..10], &s[s.len() - 4..])
}

/// One fully executed block whose two commitments (the node's in-memory
/// chain root and the file store's incremental root) are still in
/// flight.
struct InFlight {
    pending: PendingBlock,
    store_root: CommitHandle,
    txs: usize,
}

/// Joins both commitments of the previous block, checks the chain
/// linkage and the sequential/parallel root agreement, and prints the
/// row.
fn flush(inflight: InFlight, parent_root: &mut mtpu_repro::primitives::B256) {
    let report = inflight.pending.wait();
    let incremental = inflight.store_root.wait().expect("persist block");

    // Parent linkage: the chain of commitments must be unbroken.
    assert_eq!(report.parent_merkle_root, *parent_root, "root chain broken");
    *parent_root = report.merkle_root;

    // Parallel execution + incremental trie commit must land on the
    // same 32 bytes as the node's pipelined incremental commitment.
    assert_eq!(incremental, report.merkle_root, "trie commit diverged");

    println!(
        "{:>5} {:>6} {:>7.0}% {:>10} {:>8.2}x {:>8.0}% {:>7.0}%  {:<16}",
        report.height,
        inflight.txs,
        100.0 * report.dependent_ratio,
        report.schedule.makespan,
        report.speedup(),
        100.0 * report.hotspot_coverage,
        100.0 * report.schedule.utilization(),
        short(report.merkle_root),
    );
}

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);

    let mut generator = Generator::new(31);
    let config = MtpuConfig {
        redundancy_opt: true,
        hotspot_opt: true,
        ..MtpuConfig::default()
    };
    let mut node = Node::new(generator.fx.state.clone(), config);
    let executor = ParExecutor::new(4);

    let store_dir = std::env::temp_dir().join(format!("mtpu-chain-sim-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_dir);
    let mut committer =
        StateCommitter::new(FileStore::open(&store_dir).expect("open node store")).with_threads(4);
    // Seed the trie with genesis so block deltas commit incrementally.
    mtpu_repro::evm::commit_full(&mut committer, &node.state);
    let genesis_root = committer.persist().expect("persist genesis");
    assert_eq!(genesis_root, node.merkle_root());
    // From here on the file-backed committer lives on its own thread;
    // each block's hashing + fsync overlaps the next block's execution.
    let committer = AsyncCommitter::new(committer);

    // The flat accounts store shadows the chain: deltas absorb after
    // each block, the write cache drains in the background.
    let flat_dir = std::env::temp_dir().join(format!("mtpu-chain-sim-flat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&flat_dir);
    let flat = Arc::new(AccountsDb::open(&flat_dir).expect("open accounts db"));
    flat.bootstrap_from_state(&node.state, 0);
    let flat_flush = FlushService::start(flat.clone());

    println!(
        "{:>5} {:>6} {:>8} {:>10} {:>9} {:>9} {:>8}  {:<16}",
        "block", "txs", "dep%", "cycles", "speedup", "hotspot%", "util%", "state root"
    );
    let mut parent_root = genesis_root;
    let mut inflight: Option<InFlight> = None;
    for height in 1..=blocks as u64 {
        let block = generator.block(&BlockConfig {
            tx_count: 96,
            dependent_ratio: 0.25,
            erc20_ratio: None,
            sct_ratio: 0.92,
            chain_bias: 0.8,
            focus: None,
        });
        let base = node.state.clone();
        // The node's state advances synchronously; only the merkle
        // commitment is left running on its commit thread.
        let pending = node.process_block_pipelined(&block).expect("valid block");
        // Keep the generator's fixture state in sync with the chain.
        generator.fx.state = node.state.clone();

        let result = executor.execute_block(&base, &block);
        let store_root = result.submit_commit(&committer, &base, true);
        flat.absorb(&result.delta, height);
        flat_flush.request_flush(height.saturating_sub(1));

        // Only now join the *previous* block — its two commitments have
        // been hashing while this block executed.
        if let Some(prev) = inflight.take() {
            flush(prev, &mut parent_root);
        }
        inflight = Some(InFlight {
            pending,
            store_root,
            txs: block.transactions.len(),
        });
    }
    if let Some(last) = inflight.take() {
        flush(last, &mut parent_root);
    }

    // Restart survival: reopen the store and resume at the same root.
    let committer = committer.into_inner();
    let total_nodes = {
        use mtpu_repro::statedb::NodeStore;
        committer.store().node_count()
    };
    drop(committer);
    let mut reopened = StateCommitter::new(FileStore::open(&store_dir).expect("reopen store"));
    let resumed = reopened.commit();
    assert_eq!(resumed, parent_root, "reopened store lost the chain head");
    println!(
        "\nstore reopened from {}: root {} resumed across restart ({total_nodes} nodes on disk)",
        store_dir.display(),
        short(resumed),
    );
    let _ = std::fs::remove_dir_all(&store_dir);

    // Flat-store snapshot → restore: the reopened accounts DB resumes at
    // the same head (and remembers the trie root it was snapshotted at).
    flat_flush.quiesce();
    flat.snapshot(Some(parent_root))
        .expect("snapshot flat store");
    let flat_stats = flat.stats();
    drop(flat_flush);
    drop(flat);
    let restored = AccountsDb::open(&flat_dir).expect("restore accounts db");
    assert_eq!(restored.snapshot_root(), Some(parent_root));
    assert_eq!(restored.head_height(), blocks as u64);
    println!(
        "flat store restored at height {}: root {} ({} accounts, {} files, {} KiB)",
        restored.head_height(),
        short(parent_root),
        flat_stats.indexed_accounts,
        flat_stats.files,
        flat_stats.file_bytes / 1024,
    );
    let _ = std::fs::remove_dir_all(&flat_dir);

    println!(
        "\nBlock 1 runs with a cold Contract Table; from block 2 on the block\n\
         interval has learned the hotspot paths and the speedup settles higher\n\
         (the paper's offline deep-optimization loop, §3.4)."
    );
}
