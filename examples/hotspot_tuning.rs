//! Hotspot optimization walkthrough (paper §3.4, Figs. 10–11): learn a
//! contract's execution path, inspect what the optimizer found
//! (pre-executable chunks, Constants-Table eliminations, prefetchable
//! storage reads, chunked loading), and measure the cycle effect.
//!
//! ```sh
//! cargo run --example hotspot_tuning
//! ```

use mtpu_repro::contracts::Fixture;
use mtpu_repro::evm::{trace_transaction, BlockHeader};
use mtpu_repro::mtpu::hotspot::ContractTable;
use mtpu_repro::mtpu::pu::{Pu, StateBuffer, TxJob};
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::primitives::U256;

fn main() {
    let mut fx = Fixture::new();
    let mut state = fx.state.clone();
    let header = BlockHeader::default();
    let to = Fixture::user_address(42).to_u256();

    // 1. Record an execution path of TetherUSD::transfer (the hottest
    //    function on Ethereum).
    let tx = fx.call_tx(1, "Tether USD", "transfer", &[to, U256::from(250u64)]);
    let (receipt, trace) = trace_transaction(&mut state, &header, &tx).expect("valid");
    assert!(receipt.success);
    println!(
        "recorded path: {} instructions, {} storage accesses",
        trace.instruction_count(),
        trace.storage.len()
    );

    // 2. Learn it in the Contract Table (the block-interval offline pass).
    let mut table = ContractTable::new();
    let code = state.code(fx.spec("Tether USD").address).to_vec();
    table.record_invocation(&trace);
    table.learn(&trace, &code);
    let key = (
        fx.spec("Tether USD").address,
        trace.top_frame().unwrap().selector.unwrap(),
    );
    let analysis = table.analysis(&key).expect("learned");
    println!("\n== Contract Table entry (Tether USD :: transfer) ==");
    println!("  bytecode                {:>6} bytes", analysis.full_bytes);
    println!(
        "  chunked loading         {:>6} bytes ({:.1}% of the code)",
        analysis.loaded_bytes,
        100.0 * analysis.loaded_bytes as f64 / analysis.full_bytes as f64
    );
    println!(
        "  pre-executable pcs      {:>6} (Compare/Check chunks)",
        analysis.preexec_pcs.len()
    );
    println!(
        "  eliminated PUSHes       {:>6} (to the Constants Table)",
        analysis.eliminated_push_pcs.len()
    );
    println!(
        "  constant instructions   {:>6}",
        analysis.const_operand_pcs.len()
    );
    println!(
        "  prefetchable SLOADs     {:>6}",
        analysis.prefetch_pcs.len()
    );

    // 3. Replay a redundant transaction with and without the hotspot
    //    optimization.
    let tx2 = fx.call_tx(2, "Tether USD", "transfer", &[to, U256::from(99u64)]);
    let (_, trace2) = trace_transaction(&mut state, &header, &tx2).expect("valid");
    println!("\n== cycle effect on a redundant transaction ==");
    for (name, hotspot) in [("without hotspot opt", false), ("with hotspot opt", true)] {
        let cfg = MtpuConfig {
            pu_count: 1,
            redundancy_opt: true,
            hotspot_opt: hotspot,
            ..MtpuConfig::default()
        };
        let (transforms, loaded) = if hotspot {
            table.transforms_for(&trace2)
        } else {
            (mtpu_repro::mtpu::stream::StreamTransforms::none(), None)
        };
        let job = TxJob::build_with_override(&trace2, &cfg, &transforms, loaded);
        let mut pu = Pu::new(0, &cfg);
        let t = pu.execute(&job, &mut StateBuffer::default(), &cfg);
        println!(
            "  {name:<22} {:>6} cycles ({} skipped, {} eliminated, {} prefetch hits)",
            t.cycles, t.skipped_preexec, t.eliminated, t.prefetch_hits
        );
    }
}
