//! The front half of the node, end to end: a Zipfian transaction stream
//! is ingested into the bounded sharded mempool on its own thread while
//! the driver packs conflict-aware blocks, executes them on the parallel
//! engine and pipelines their state commitments — ingestion, execution
//! and trie hashing all overlapped, block after block.
//!
//! The same session then runs again on the flat accounts-DB backend
//! (write cache → index → storage files, MPT commitment-only): the
//! per-block roots must match bit for bit, and a snapshot → restore
//! round-trip of the flat store reproduces the same head.
//!
//! ```sh
//! cargo run --release --example node_pipeline [blocks]
//! ```

use mtpu_repro::accountsdb::{AccountsDb, FlushService};
use mtpu_repro::evm::tx::{BlockHeader, Transaction};
use mtpu_repro::mempool::{
    BlockPacker, DriverConfig, Mempool, NodeDriver, PackerConfig, PoolConfig, TxSource,
};
use mtpu_repro::workloads::{ZipfConfig, ZipfGen};
use std::sync::Arc;

/// A Zipf stream truncated to `left` transactions.
struct Bounded {
    gen: ZipfGen,
    left: usize,
}

impl TxSource for Bounded {
    fn next_tx(&mut self) -> Option<Transaction> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        Some(self.gen.next_tx())
    }
}

fn short(root: mtpu_repro::primitives::B256) -> String {
    let s = root.to_string();
    format!("{}..{}", &s[..10], &s[s.len() - 4..])
}

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    const BLOCK_TXS: usize = 96;

    let driver = NodeDriver::new(
        // Per-sender cap lifted: dropping a mid-chain nonce would park the
        // rest of that Zipf-hot sender's stream forever. Backpressure
        // bounds the pool instead.
        Mempool::new(PoolConfig {
            max_txs: 4096,
            max_per_sender: 4096,
            ..PoolConfig::default()
        }),
        BlockPacker::new(PackerConfig {
            max_txs: BLOCK_TXS,
            gas_limit: 256_000_000,
            ..PackerConfig::default()
        }),
        DriverConfig {
            blocks,
            threads: 4,
            commit_threads: 4,
            ingest_batch: 128,
            prefill: 1024,
            background_ingest: true,
            ..DriverConfig::default()
        },
    );

    let source = Bounded {
        gen: ZipfGen::new(0x21F, ZipfConfig::default()),
        left: blocks * BLOCK_TXS * 2,
    };
    let genesis = source.gen.genesis_state().clone();

    println!("packing {blocks} blocks from a Zipfian mempool (overlapped pipeline)\n");
    let report = driver.run(genesis.clone(), source, |height| BlockHeader {
        height,
        ..Default::default()
    });

    println!("block   txs  indep  skips  root");
    for b in &report.blocks {
        println!(
            "{:>5} {:>5} {:>6} {:>6}  {}",
            b.height,
            b.txs,
            b.independent,
            b.conflict_skips,
            short(b.merkle_root)
        );
    }
    println!(
        "\n{} blocks, {} txs in {:.2?} — {:.0} tx/s sustained",
        report.blocks.len(),
        report.chain.txs,
        report.wall,
        report.tx_per_sec()
    );
    println!(
        "independent front {:.0}%, re-execution ratio {:.3}",
        100.0 * report.independent_ratio(),
        report.chain.reexec_ratio()
    );
    let p = &report.pool;
    println!(
        "pool: {} admitted, {} parked, {} replaced, {} evicted, {} purged",
        p.admitted, p.parked, p.replaced, p.evicted, p.stale_purged
    );
    println!(
        "roots: genesis {} -> final {}",
        short(report.genesis_root),
        short(report.final_root)
    );
    assert_eq!(
        report.final_root,
        report.blocks.last().expect("blocks nonempty").merkle_root
    );

    // --- flat accounts-DB backend: same stream, bit-identical roots ---
    // Inline ingest makes both sessions deterministic, so the packed
    // blocks (and therefore every root) must agree exactly.
    let parity_blocks = blocks.min(8);
    let make_driver = || {
        NodeDriver::new(
            Mempool::new(PoolConfig {
                max_txs: 4096,
                max_per_sender: 4096,
                ..PoolConfig::default()
            }),
            BlockPacker::new(PackerConfig {
                max_txs: BLOCK_TXS,
                gas_limit: 256_000_000,
                ..PackerConfig::default()
            }),
            DriverConfig {
                blocks: parity_blocks,
                background_ingest: false,
                ..DriverConfig::default()
            },
        )
    };
    let make_source = || Bounded {
        gen: ZipfGen::new(0x21F, ZipfConfig::default()),
        left: parity_blocks * BLOCK_TXS * 2,
    };
    let header = |height| BlockHeader {
        height,
        ..Default::default()
    };

    println!("\nflat-backend parity over {parity_blocks} blocks:");
    let baseline = make_driver().run(genesis.clone(), make_source(), header);

    let dir = std::env::temp_dir().join(format!("mtpu-example-accountsdb-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(AccountsDb::open(&dir).expect("open accounts db"));
    db.bootstrap_from_state(&genesis, 0);
    let flush = FlushService::start(db.clone());
    let flat = make_driver().run_flat(&genesis, &db, &flush, make_source(), header);

    assert_eq!(baseline.blocks.len(), flat.blocks.len());
    for (a, b) in baseline.blocks.iter().zip(&flat.blocks) {
        assert_eq!(
            a.merkle_root, b.merkle_root,
            "flat backend diverged at block {}",
            a.height
        );
    }
    // Drain the background flush before reading final store stats.
    flush.quiesce();
    let stats = db.stats();
    println!(
        "  roots identical; cache hit ratio {:.1}%, {} flushes over {} files ({} KiB)",
        100.0 * stats.hit_ratio(),
        stats.flushes,
        stats.files,
        stats.file_bytes / 1024
    );

    // Snapshot → restore: the reopened store carries the same head root.
    db.snapshot(Some(flat.final_root)).expect("snapshot");
    drop(flush);
    drop(db);
    let restored = AccountsDb::open(&dir).expect("restore accounts db");
    assert_eq!(restored.snapshot_root(), Some(flat.final_root));
    println!(
        "  snapshot/restore round-trip ok at height {} (root {})",
        restored.head_height(),
        short(flat.final_root)
    );
    let _ = std::fs::remove_dir_all(&dir);
}
