//! The front half of the node, end to end: a Zipfian transaction stream
//! is ingested into the bounded sharded mempool on its own thread while
//! the driver packs conflict-aware blocks, executes them on the parallel
//! engine and pipelines their state commitments — ingestion, execution
//! and trie hashing all overlapped, block after block.
//!
//! ```sh
//! cargo run --release --example node_pipeline [blocks]
//! ```

use mtpu_repro::evm::tx::{BlockHeader, Transaction};
use mtpu_repro::mempool::{
    BlockPacker, DriverConfig, Mempool, NodeDriver, PackerConfig, PoolConfig, TxSource,
};
use mtpu_repro::workloads::{ZipfConfig, ZipfGen};

/// A Zipf stream truncated to `left` transactions.
struct Bounded {
    gen: ZipfGen,
    left: usize,
}

impl TxSource for Bounded {
    fn next_tx(&mut self) -> Option<Transaction> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        Some(self.gen.next_tx())
    }
}

fn short(root: mtpu_repro::primitives::B256) -> String {
    let s = root.to_string();
    format!("{}..{}", &s[..10], &s[s.len() - 4..])
}

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(24);
    const BLOCK_TXS: usize = 96;

    let driver = NodeDriver::new(
        // Per-sender cap lifted: dropping a mid-chain nonce would park the
        // rest of that Zipf-hot sender's stream forever. Backpressure
        // bounds the pool instead.
        Mempool::new(PoolConfig {
            max_txs: 4096,
            max_per_sender: 4096,
            ..PoolConfig::default()
        }),
        BlockPacker::new(PackerConfig {
            max_txs: BLOCK_TXS,
            gas_limit: 256_000_000,
            ..PackerConfig::default()
        }),
        DriverConfig {
            blocks,
            threads: 4,
            commit_threads: 4,
            ingest_batch: 128,
            prefill: 1024,
            background_ingest: true,
        },
    );

    let source = Bounded {
        gen: ZipfGen::new(0x21F, ZipfConfig::default()),
        left: blocks * BLOCK_TXS * 2,
    };
    let genesis = source.gen.genesis_state().clone();

    println!("packing {blocks} blocks from a Zipfian mempool (overlapped pipeline)\n");
    let report = driver.run(genesis, source, |height| BlockHeader {
        height,
        ..Default::default()
    });

    println!("block   txs  indep  skips  root");
    for b in &report.blocks {
        println!(
            "{:>5} {:>5} {:>6} {:>6}  {}",
            b.height,
            b.txs,
            b.independent,
            b.conflict_skips,
            short(b.merkle_root)
        );
    }
    println!(
        "\n{} blocks, {} txs in {:.2?} — {:.0} tx/s sustained",
        report.blocks.len(),
        report.chain.txs,
        report.wall,
        report.tx_per_sec()
    );
    println!(
        "independent front {:.0}%, re-execution ratio {:.3}",
        100.0 * report.independent_ratio(),
        report.chain.reexec_ratio()
    );
    let p = &report.pool;
    println!(
        "pool: {} admitted, {} parked, {} replaced, {} evicted, {} purged",
        p.admitted, p.parked, p.replaced, p.evicted, p.stale_purged
    );
    println!(
        "roots: genesis {} -> final {}",
        short(report.genesis_root),
        short(report.final_root)
    );
    assert_eq!(
        report.final_root,
        report.blocks.last().expect("blocks nonempty").merkle_root
    );
}
