//! Quickstart: deploy a contract, execute a transaction on the functional
//! EVM, and replay it through the MTPU timing model.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mtpu_repro::contracts::Fixture;
use mtpu_repro::evm::{trace_transaction, BlockHeader};
use mtpu_repro::mtpu::pu::{Pu, StateBuffer, TxJob};
use mtpu_repro::mtpu::stream::StreamTransforms;
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::primitives::U256;

fn main() {
    // A ready-made world: the TOP8 contracts plus a Counter, deployed and
    // seeded.
    let mut fx = Fixture::new();
    let mut state = fx.state.clone();
    let header = BlockHeader::default();

    // 1. Execute `Counter::add(40)` then `Counter::increment()` twice.
    println!("== functional execution ==");
    let txs = [
        fx.call_tx(1, "Counter", "add", &[U256::from(40u64)]),
        fx.call_tx(1, "Counter", "increment", &[]),
        fx.call_tx(1, "Counter", "increment", &[]),
        fx.call_tx(1, "Counter", "get", &[]),
    ];
    let mut traces = Vec::new();
    for (i, tx) in txs.iter().enumerate() {
        let (receipt, trace) = trace_transaction(&mut state, &header, tx).expect("valid tx");
        println!(
            "  {:>9} gas, {:>3} instructions, success={}",
            receipt.gas_used,
            trace.instruction_count(),
            receipt.success
        );
        if i == txs.len() - 1 {
            println!("  counter value = {}", U256::from_be_slice(&receipt.output));
        }
        traces.push(trace);
    }

    // 2. Replay the same transactions through the cycle-level PU model —
    //    first the scalar baseline, then the full MTPU pipeline.
    println!("\n== timing model ==");
    for (name, cfg) in [
        ("baseline (no ILP)", MtpuConfig::baseline()),
        (
            "MTPU single PU",
            MtpuConfig {
                pu_count: 1,
                redundancy_opt: true,
                ..MtpuConfig::default()
            },
        ),
    ] {
        let mut pu = Pu::new(0, &cfg);
        let mut buffer = StateBuffer::default();
        let mut cycles = 0;
        for t in &traces {
            let job = TxJob::build(t, &cfg, &StreamTransforms::none());
            cycles += pu.execute(&job, &mut buffer, &cfg).cycles;
        }
        println!("  {name:<18} {cycles:>6} cycles");
    }
    println!("\nThe MTPU wins through grouped issue (DB cache), instruction");
    println!("folding, and context reuse across the redundant increments.");
}
