//! Serving reads against the live write pipeline: a `ReadServer` is
//! attached to the node driver as its block sink, then — while blocks
//! keep executing and committing — reader threads answer balance queries
//! and run read-only ERC20 `balanceOf` call simulations at both the head
//! and pinned historical heights, a subscriber tails the per-block
//! `{height, merkle_root, receipts}` feed, and a receipt is looked up by
//! transaction hash. At the end, the head balance is cross-checked
//! against the pipeline's own final state.
//!
//! ```sh
//! cargo run --release --example read_serve [blocks]
//! ```

use mtpu_repro::contracts::{addresses, call_data, Fixture};
use mtpu_repro::evm::tx::{BlockHeader, Transaction};
use mtpu_repro::evm::ReadCall;
use mtpu_repro::mempool::{
    BlockPacker, DriverConfig, Mempool, NodeDriver, PackerConfig, PoolConfig, TxSource,
};
use mtpu_repro::primitives::U256;
use mtpu_repro::readserve::{ReadServeConfig, ReadServer};
use mtpu_repro::workloads::{ZipfConfig, ZipfGen, ZipfSampler};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A Zipf stream truncated to `left` transactions.
struct Bounded {
    gen: ZipfGen,
    left: usize,
}

impl TxSource for Bounded {
    fn next_tx(&mut self) -> Option<Transaction> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        Some(self.gen.next_tx())
    }
}

fn main() {
    let blocks: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(16);
    const BLOCK_TXS: usize = 96;

    let source = Bounded {
        gen: ZipfGen::new(
            0x5EED,
            ZipfConfig {
                senders: 256,
                hot_ratio: 0.2,
                ..ZipfConfig::default()
            },
        ),
        left: blocks * BLOCK_TXS * 2,
    };
    let genesis = source.gen.genesis_state().clone();

    let server = ReadServer::new(genesis.clone(), ReadServeConfig::default());
    let subscriber = server.subscribe();
    let driver = NodeDriver::new(
        Mempool::new(PoolConfig {
            max_txs: 4096,
            max_per_sender: 4096,
            ..PoolConfig::default()
        }),
        BlockPacker::new(PackerConfig {
            max_txs: BLOCK_TXS,
            gas_limit: 256_000_000,
            ..PackerConfig::default()
        }),
        DriverConfig {
            blocks,
            threads: 4,
            background_ingest: false,
            ..DriverConfig::default()
        },
    )
    .with_sink(server.clone());

    println!("== write pipeline + {blocks}-block read-serving session ==");
    let stop = AtomicBool::new(false);
    let reads = AtomicU64::new(0);
    let report = std::thread::scope(|s| {
        let driver_handle = s.spawn(|| {
            let report = driver.run(genesis, source, |height| BlockHeader {
                height,
                ..Default::default()
            });
            stop.store(true, Ordering::Release);
            report
        });
        for seed in 0..2u64 {
            let server = &server;
            let stop = &stop;
            let reads = &reads;
            s.spawn(move || {
                let mut keys = ZipfSampler::new(seed, 256, 1.0);
                while !stop.load(Ordering::Acquire) {
                    let user = Fixture::user_address(keys.sample());
                    // Head read + a call simulation pinned to the head.
                    let _ = server.get_balance(None, user);
                    let call = ReadCall::view(
                        user,
                        addresses::tether(),
                        call_data("balanceOf(address)", &[user.to_u256()]),
                    );
                    if let Some((_, out)) = server.call(None, &call) {
                        assert!(out.success, "balanceOf reverted");
                    }
                    reads.fetch_add(2, Ordering::Relaxed);
                    std::thread::yield_now();
                }
            });
        }
        driver_handle.join().expect("driver thread")
    });

    println!(
        "pipeline: {} blocks, {} txs; readers answered {} reads meanwhile",
        report.blocks.len(),
        report.chain.txs,
        reads.load(Ordering::Relaxed),
    );

    // The subscriber saw every committed block, root and all.
    let events = subscriber.drain();
    println!(
        "subscription: {} events, {} dropped, final root {}",
        events.len(),
        subscriber.dropped(),
        events
            .last()
            .map(|e| e.merkle_root.to_string())
            .unwrap_or_default(),
    );

    // Historical reads: the same account at three pinned heights.
    let user = Fixture::user_address(0);
    let (lo, hi) = server.retained().expect("window non-empty");
    for h in [lo, (lo + hi) / 2, hi] {
        let (at, balance) = server.get_balance(Some(h), user).expect("retained");
        println!("  balance of user 0 at height {at}: {balance}");
    }

    // Receipt lookup by hash, straight off the latest block.
    let head = server.latest().expect("head snapshot");
    if let Some(tx) = head.block().transactions.first() {
        let (h, idx, receipt) = server.receipt_by_hash(tx.hash()).expect("indexed");
        println!(
            "receipt of {}: height {h} index {idx}, success={} gas={}",
            tx.hash(),
            receipt.success,
            receipt.gas_used,
        );
    }

    // Cross-check the head against the driver's own final root.
    assert_eq!(head.merkle_root(), Some(report.final_root));
    let erc20_balance = server
        .call(
            None,
            &ReadCall::view(
                user,
                addresses::tether(),
                call_data("balanceOf(address)", &[user.to_u256()]),
            ),
        )
        .map(|(_, out)| U256::from_be_slice(&out.output));
    println!(
        "head: height {} root {} — ERC20 balanceOf(user 0) = {:?}",
        head.height(),
        report.final_root,
        erc20_balance,
    );
    println!("read layer and write pipeline agree at the head.");
}
