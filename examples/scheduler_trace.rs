//! Scheduler visualization: prints the spatial-temporal schedule of a
//! small block as a per-PU timeline, showing redundancy affinity (same
//! contract sticking to one PU) and dependency stalls — and dumps the
//! whole thing as a Chrome `trace_event` file.
//!
//! ```sh
//! cargo run --example scheduler_trace
//! ```
//!
//! The run writes `scheduler_trace.json`: open it in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`. Process 2 ("sim")
//! holds one lane per PU with the simulated per-tx slices (timestamps
//! are cycle numbers); process 1 ("wall") holds the real worker threads
//! of `mtpu-parexec` executing the very same block, with exec/commit/
//! fallback spans in nanoseconds.

use mtpu_repro::mtpu::sched::simulate_st;
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::parexec::ParExecutor;
use mtpu_repro::telemetry::{TraceEvent, SIM_PID};
use mtpu_repro::workloads::{BlockConfig, Generator};

fn main() {
    mtpu_repro::telemetry::set_enabled(true);
    mtpu_repro::telemetry::name_thread("main");

    let mut generator = Generator::new(3);
    let block = generator.prepared_block(&BlockConfig {
        tx_count: 24,
        dependent_ratio: 0.35,
        erc20_ratio: None,
        sct_ratio: 1.0,
        chain_bias: 0.8,
        focus: None,
    });
    let cfg = MtpuConfig {
        redundancy_opt: true,
        ..MtpuConfig::default()
    };
    let jobs = block.jobs(&cfg, None);
    let result = simulate_st(&jobs, &block.graph, &cfg);

    println!(
        "24-tx block, dependent ratio {:.0}%, makespan {} cycles, utilization {:.0}%\n",
        100.0 * block.dependent_ratio(),
        result.makespan,
        100.0 * result.utilization()
    );
    println!("tx  pu  start     end       parents        contract");
    println!("----------------------------------------------------------");
    for i in 0..jobs.len() {
        let parents: Vec<String> = block
            .graph
            .parents(i)
            .iter()
            .map(|p| p.to_string())
            .collect();
        let contract = block.block.transactions[i]
            .to
            .map(|a| format!("{}", a))
            .unwrap_or_else(|| "create".into());
        println!(
            "{i:>2}  {:>2}  {:>8}  {:>8}  {:<13} ..{}",
            result.pu_of[i],
            result.start[i],
            result.end[i],
            if parents.is_empty() {
                "-".to_string()
            } else {
                parents.join(",")
            },
            &contract[contract.len() - 6..],
        );
    }

    // A compact per-PU lane view (each cell = one scheduled tx in start
    // order).
    println!("\nper-PU lanes (tx ids in dispatch order):");
    for pu in 0..cfg.pu_count {
        let mut lane: Vec<usize> = (0..jobs.len()).filter(|&i| result.pu_of[i] == pu).collect();
        lane.sort_by_key(|&i| result.start[i]);
        let ids: Vec<String> = lane.iter().map(|i| format!("{i:>2}")).collect();
        println!("  PU{pu}: {}", ids.join(" -> "));
    }
    assert!(block
        .graph
        .schedule_respects_dag(&result.start, &result.end));

    // Mirror the simulated schedule into the trace-event log: one SIM_PID
    // thread lane per PU, one slice per transaction, timestamps in cycle
    // numbers (Chrome renders them as microseconds; only the shape
    // matters).
    // Thread names are global per tid, so the simulated PU lanes take a
    // disjoint tid range to keep the wall-clock worker labels intact.
    const PU_TID_BASE: u32 = 100;
    let reg = mtpu_repro::telemetry::global();
    for pu in 0..cfg.pu_count {
        reg.set_thread_name(PU_TID_BASE + pu as u32, &format!("PU{pu}"));
    }
    for i in 0..jobs.len() {
        reg.add_event(TraceEvent {
            name: format!("tx{i}"),
            cat: "sim",
            pid: SIM_PID,
            tid: PU_TID_BASE + result.pu_of[i] as u32,
            ts_ns: result.start[i],
            dur_ns: result.end[i].saturating_sub(result.start[i]),
            args: vec![("pu".into(), result.pu_of[i].into())],
        });
    }

    // Execute the same block on the real host-thread engine: its workers
    // emit wall-clock exec/commit/fallback spans into WALL_PID lanes.
    let exec = ParExecutor::new(4);
    let par = exec.execute_block_with_dag(&block.state_before, &block.block, &block.graph);
    assert_eq!(
        par.state.state_root(),
        block.state_after.state_root(),
        "parallel result must match"
    );
    println!(
        "\nhost parexec (4 workers): {} commits, {} conflicts, wall {:.2?}",
        par.stats.txs, par.stats.conflicts, par.stats.wall
    );

    let trace = reg.chrome_trace_json();
    std::fs::write("scheduler_trace.json", &trace).expect("write scheduler_trace.json");
    let (events, dropped) = reg.event_counts();
    println!(
        "wrote scheduler_trace.json ({} events, {} dropped) — open in https://ui.perfetto.dev",
        events, dropped
    );
}
