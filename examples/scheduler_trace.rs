//! Scheduler visualization: prints the spatial-temporal schedule of a
//! small block as a per-PU timeline, showing redundancy affinity (same
//! contract sticking to one PU) and dependency stalls.
//!
//! ```sh
//! cargo run --example scheduler_trace
//! ```

use mtpu_repro::mtpu::sched::simulate_st;
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::workloads::{BlockConfig, Generator};

fn main() {
    let mut generator = Generator::new(3);
    let block = generator.prepared_block(&BlockConfig {
        tx_count: 24,
        dependent_ratio: 0.35,
        erc20_ratio: None,
        sct_ratio: 1.0,
        chain_bias: 0.8,
        focus: None,
    });
    let cfg = MtpuConfig {
        redundancy_opt: true,
        ..MtpuConfig::default()
    };
    let jobs = block.jobs(&cfg, None);
    let result = simulate_st(&jobs, &block.graph, &cfg);

    println!(
        "24-tx block, dependent ratio {:.0}%, makespan {} cycles, utilization {:.0}%\n",
        100.0 * block.dependent_ratio(),
        result.makespan,
        100.0 * result.utilization()
    );
    println!("tx  pu  start     end       parents        contract");
    println!("----------------------------------------------------------");
    for i in 0..jobs.len() {
        let parents: Vec<String> = block
            .graph
            .parents(i)
            .iter()
            .map(|p| p.to_string())
            .collect();
        let contract = block.block.transactions[i]
            .to
            .map(|a| format!("{}", a))
            .unwrap_or_else(|| "create".into());
        println!(
            "{i:>2}  {:>2}  {:>8}  {:>8}  {:<13} ..{}",
            result.pu_of[i],
            result.start[i],
            result.end[i],
            if parents.is_empty() {
                "-".to_string()
            } else {
                parents.join(",")
            },
            &contract[contract.len() - 6..],
        );
    }

    // A compact per-PU lane view (each cell = one scheduled tx in start
    // order).
    println!("\nper-PU lanes (tx ids in dispatch order):");
    for pu in 0..cfg.pu_count {
        let mut lane: Vec<usize> = (0..jobs.len()).filter(|&i| result.pu_of[i] == pu).collect();
        lane.sort_by_key(|&i| result.start[i]);
        let ids: Vec<String> = lane.iter().map(|i| format!("{i:>2}")).collect();
        println!("  PU{pu}: {}", ids.join(" -> "));
    }
    assert!(block
        .graph
        .schedule_respects_dag(&result.start, &result.end));
}
