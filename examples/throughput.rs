//! Throughput projection: converts simulated cycles into transactions
//! per second at the paper's 300 MHz clock — the system-level metric the
//! paper's introduction motivates (throughput = transactions per block /
//! block interval, Fig. 2).
//!
//! ```sh
//! cargo run --release --example throughput
//! ```

use mtpu_repro::evm::execute_block;
use mtpu_repro::mtpu::hotspot::ContractTable;
use mtpu_repro::mtpu::sched::{simulate_sequential, simulate_st};
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::parexec::ParExecutor;
use mtpu_repro::workloads::{BlockConfig, Generator};
use std::time::Instant;

/// The paper's synthesized clock.
const CLOCK_HZ: f64 = 300.0e6;

fn main() {
    let mut generator = Generator::new(1);
    let mut table = ContractTable::new();
    let warm = generator.prepared_block(&BlockConfig::default());
    warm.learn_hotspots(&mut table, &warm.state_before);

    // A representative mainnet-like block: mostly SCTs, fifth of them
    // dependent.
    let block = generator.prepared_block(&BlockConfig {
        tx_count: 256,
        dependent_ratio: 0.2,
        erc20_ratio: None,
        sct_ratio: 0.9,
        chain_bias: 0.8,
        focus: None,
    });
    let n = block.block.transactions.len() as f64;
    println!(
        "block: {} txs ({}% SCT), dependent ratio {:.0}%\n",
        n,
        90,
        100.0 * block.dependent_ratio()
    );
    println!(
        "{:<42} {:>12} {:>12} {:>9}",
        "execution engine", "cycles/block", "blocks/s", "tx/s"
    );
    println!("{}", "-".repeat(80));

    let show = |name: &str, makespan: u64| {
        let blocks_per_s = CLOCK_HZ / makespan as f64;
        println!(
            "{name:<42} {makespan:>12} {blocks_per_s:>12.1} {:>9.0}",
            blocks_per_s * n
        );
    };

    let base_cfg = MtpuConfig::baseline();
    let seq = simulate_sequential(&block.jobs(&base_cfg, None), &base_cfg);
    show("sequential PU (today's EVM discipline)", seq.makespan);

    let ilp_cfg = MtpuConfig {
        pu_count: 1,
        redundancy_opt: false,
        ..MtpuConfig::default()
    };
    let ilp = simulate_sequential(&block.jobs(&ilp_cfg, None), &ilp_cfg);
    show("single MTPU PU (ILP)", ilp.makespan);

    let full_cfg = MtpuConfig {
        redundancy_opt: true,
        hotspot_opt: true,
        ..MtpuConfig::default()
    };
    let full = simulate_st(
        &block.jobs(&full_cfg, Some(&table)),
        &block.graph,
        &full_cfg,
    );
    show("4-PU MTPU, full co-design", full.makespan);

    println!(
        "\nAt a 12 s block interval the full design sustains ~{:.0} such blocks'\n\
         worth of execution per interval — execution stops being the\n\
         throughput bottleneck (the paper's motivating claim, §1).",
        CLOCK_HZ * 12.0 / full.makespan as f64
    );

    // The rows above are *simulated-cycle projections* of the accelerator.
    // Below: the same block executed for real on host threads by the
    // parexec engine, measured in wall-clock time. The absolute numbers
    // are incomparable (host ISA vs. 300 MHz MTPU), but the *scaling
    // shape* across threads is the same DAG-limited curve as Fig. 14.
    println!(
        "\n{:<42} {:>12} {:>9} {:>8} {:>7}",
        "host parexec (measured wall-clock)", "wall", "tx/s", "re-exec", "util"
    );
    println!("{}", "-".repeat(82));
    let threads_available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    for threads in [1usize, 2, 4, 8] {
        let exec = ParExecutor::new(threads);
        // Warm up once, then measure the better of three runs.
        let mut best = exec.execute_block_with_dag(&block.state_before, &block.block, &block.graph);
        for _ in 0..2 {
            let run = exec.execute_block_with_dag(&block.state_before, &block.block, &block.graph);
            if run.stats.wall < best.stats.wall {
                best = run;
            }
        }
        let s = &best.stats;
        let label = format!(
            "  {threads} thread{}{}",
            if threads == 1 { "" } else { "s" },
            if threads > threads_available {
                " (oversubscribed)"
            } else {
                ""
            }
        );
        println!(
            "{label:<42} {:>12} {:>9.0} {:>8} {:>6.0}%",
            format!("{:.2?}", s.wall),
            s.tx_per_sec(),
            s.reexecutions,
            100.0 * s.utilization()
        );
    }
    let t0 = Instant::now();
    let mut seq_state = block.state_before.clone();
    execute_block(&mut seq_state, &block.block);
    let seq_wall = t0.elapsed();
    println!(
        "  sequential reference                     {:>12} {:>9.0}",
        format!("{seq_wall:.2?}"),
        n / seq_wall.as_secs_f64()
    );
    println!(
        "\n(host has {threads_available} core{}; speedup over the sequential reference needs\n\
         as many physical cores as worker threads)",
        if threads_available == 1 { "" } else { "s" }
    );
}
