#!/usr/bin/env bash
# Bench smoke: run one small experiment with telemetry enabled and assert
# the consolidated BENCH_RESULTS.json snapshot is well-formed
# (schema mtpu-bench-results/v1; see DESIGN.md §7).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> bench smoke: all --only table1,stateroot,stateroot_par,interp_hot,interp_fusion,interp_prefetch,block_pipeline,accountsdb,read_qps --telemetry"
# The accountsdb and prefetch experiments default to a 1M-account
# universe; the smoke run scales them down so the whole script stays
# interactive.
MTPU_ACCOUNTSDB_ACCOUNTS="${MTPU_ACCOUNTSDB_ACCOUNTS:-20000}" \
cargo run --release -p mtpu-bench --bin all -- --only table1,stateroot,stateroot_par,interp_hot,interp_fusion,interp_prefetch,block_pipeline,accountsdb,read_qps --telemetry --json BENCH_RESULTS.json

echo "==> validating BENCH_RESULTS.json"
python3 - <<'EOF'
import json

with open("BENCH_RESULTS.json") as f:
    d = json.load(f)

expected = {"schema", "experiments", "wall_ns", "telemetry"}
assert set(d) == expected, f"top-level keys {sorted(d)} != {sorted(expected)}"
assert d["schema"] == "mtpu-bench-results/v1", d["schema"]
assert "table1" in d["experiments"], list(d["experiments"])
assert "stateroot" in d["experiments"], list(d["experiments"])
assert "interp_hot" in d["experiments"], list(d["experiments"])
assert "speedup" in d["experiments"]["interp_hot"], "interp_hot table lost its speedup columns"
assert "interp_fusion" in d["experiments"], list(d["experiments"])
# The fusion gate runs every hot-path workload fused and unfused,
# asserts (in-process) that receipts are bit-identical, and counts how
# many workloads the fused interpreter wins outright. A fusion perf
# regression fails here, not silently.
fu = d["experiments"]["interp_fusion"]
assert "schema: interp-fusion/v1" in fu, "fusion gate lost its schema marker:\n" + fu
assert "parity: OK" in fu, "fused/unfused receipt parity broken:\n" + fu
import re
m = re.search(r"fusion wins: (\d+)/(\d+)", fu)
assert m, "fusion gate lost its wins line:\n" + fu
wins, total = int(m.group(1)), int(m.group(2))
assert total == 6 and wins >= 4, \
    f"fusion must win >=4/6 hot-path workloads, won {wins}/{total}:\n" + fu
assert "interp_prefetch" in d["experiments"], list(d["experiments"])
# The prefetch gate executes every storage-heavy workload against the
# flat backend with the prefetch subsystem off and on, asserts
# (in-process) receipts/root parity against a sequential oracle, and
# counts outright wall-clock wins. A prefetch perf or correctness
# regression fails here, not silently.
pf = d["experiments"]["interp_prefetch"]
assert "schema: interp-prefetch/v1" in pf, "prefetch gate lost its schema marker:\n" + pf
assert "parity: OK" in pf, "prefetch on/off parity broken:\n" + pf
m = re.search(r"prefetch wins: (\d+)/(\d+)", pf)
assert m, "prefetch gate lost its wins line:\n" + pf
wins, total = int(m.group(1)), int(m.group(2))
assert total == 6 and wins >= 3, \
    f"prefetch must win >=3/6 storage-heavy workloads, won {wins}/{total}:\n" + pf
m = re.search(r"prefetch hits: (\d+)", pf)
assert m and int(m.group(1)) > 0, "prefetch gate recorded zero hits:\n" + pf
hits_counter = d["telemetry"]["counters"].get("evm.prefetch.hits", 0)
assert hits_counter > 0, "evm.prefetch.hits counter is zero in the telemetry snapshot"
assert "stateroot_par" in d["experiments"], list(d["experiments"])
# The sweep commits the same blocks at 1/2/4/8 threads and pipelined,
# and asserts (in-process) that every configuration lands on the same
# root; "root parity: OK" is that assertion's rendered verdict.
assert "root parity: OK" in d["experiments"]["stateroot_par"], \
    "parallel commit root mismatch:\n" + d["experiments"]["stateroot_par"]
assert d["experiments"]["stateroot_par"].count("final root: 0x") == 1
assert "block_pipeline" in d["experiments"], list(d["experiments"])
# The pipeline session packs blocks from a live mempool with ingestion,
# execution and pipelined commitment overlapped; the experiment asserts
# (in-process) per-block root linkage and repacking determinism.
bp = d["experiments"]["block_pipeline"]
assert "root linkage: OK" in bp, "pipeline root linkage broken:\n" + bp
assert "determinism: OK" in bp, "pipeline repacking nondeterministic:\n" + bp
assert "tx/s" in bp, "pipeline table lost its throughput column"
assert "accountsdb" in d["experiments"], list(d["experiments"])
# The flat-backend experiment asserts (in-process) that State and flat
# sessions agree root-for-root and that snapshot → restore keeps the
# head; "parity: OK" is that assertion's rendered verdict.
adb = d["experiments"]["accountsdb"]
assert "parity: OK" in adb, "flat backend parity broken:\n" + adb
assert "tx/s" in adb, "accountsdb table lost its throughput line"
assert "flush lag" in adb, "accountsdb report lost its flush-lag line"
assert "restore" in adb, "accountsdb report lost its restore row"
assert "read_qps" in d["experiments"], list(d["experiments"])
# The read-QPS experiment asserts (in-process) that every sampled read —
# point reads and eth_call outcomes — is bit-identical to a sequential
# replay at the same height; "parity: OK" is that verdict. The reads/s
# figure must be live (nonzero) or the readers never ran.
rq = d["experiments"]["read_qps"]
assert "parity: OK" in rq, "read layer parity broken:\n" + rq
assert "reads/s" in rq, "read_qps report lost its throughput line"
import re
m = re.search(r"sustained: (\d+) reads/s", rq)
assert m and int(m.group(1)) > 0, "read QPS is zero:\n" + rq
assert "write degradation" in rq, "read_qps report lost its degradation line"
assert d["wall_ns"]["read_qps"] > 0
assert d["wall_ns"]["accountsdb"] > 0
assert d["wall_ns"]["table1"] > 0
assert d["wall_ns"]["stateroot"] > 0
assert d["wall_ns"]["stateroot_par"] > 0
assert d["wall_ns"]["interp_hot"] > 0
assert d["wall_ns"]["interp_fusion"] > 0
assert d["wall_ns"]["block_pipeline"] > 0
assert d["telemetry"] is not None, "telemetry snapshot missing despite --telemetry"
assert "counters" in d["telemetry"]
print(f"BENCH_RESULTS.json OK: {len(d['experiments'])} experiment(s), "
      f"{len(d['telemetry']['counters'])} counters")
EOF
