#!/usr/bin/env bash
# Local mirror of the CI pipeline: formatting, lints, tier-1 build/tests,
# then the full workspace test suite. Run before pushing.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --all --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release (tier-1)"
cargo build --release

echo "==> cargo test -q (tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> fusion differential fuzz (fused vs unfused observational equality)"
cargo test -q --test fusion_differential

echo "==> readserve crate tests (MVCC snapshot read layer)"
cargo test -q -p mtpu-readserve

echo "==> statedb fuzz smoke (randomized trie vs model, incremental vs scratch)"
cargo run --release -p mtpu-statedb --example fuzz_smoke

./scripts/bench_smoke.sh

echo "All checks passed."
