//! Umbrella crate for the MTPU reproduction workspace.
//!
//! Re-exports the individual crates under short names so examples and
//! integration tests can use a single dependency:
//!
//! ```
//! use mtpu_repro::primitives::U256;
//! assert_eq!(U256::from(2u64) + U256::from(3u64), U256::from(5u64));
//! ```

pub use mtpu;
pub use mtpu_accountsdb as accountsdb;
pub use mtpu_asm as asm;
pub use mtpu_bpu as bpu;
pub use mtpu_contracts as contracts;
pub use mtpu_evm as evm;
pub use mtpu_mempool as mempool;
pub use mtpu_parexec as parexec;
pub use mtpu_primitives as primitives;
pub use mtpu_readserve as readserve;
pub use mtpu_statedb as statedb;
pub use mtpu_telemetry as telemetry;
pub use mtpu_workloads as workloads;
