//! Flat accounts-DB persistence: a chain of block deltas absorbed into
//! `AccountsDb` must survive a restart through the snapshot MANIFEST —
//! reopening resumes at the last snapshot, every account and slot reads
//! back bit-identically, and the chain keeps growing from there.
//!
//! Crash semantics mirror `statedb_persistence.rs`: work the flush
//! service made durable in storage files but that never reached a
//! MANIFEST update is dropped on reopen ("kill between write-cache
//! flush and MANIFEST update"), leaving the store at the last durable
//! snapshot.

use mtpu_repro::accountsdb::AccountsDb;
use mtpu_repro::evm::state::State;
use mtpu_repro::evm::StateRead;
use mtpu_repro::parexec::ParExecutor;
use mtpu_repro::primitives::B256;
use mtpu_repro::workloads::{BlockConfig, Generator};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("mtpu-accountsdb-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn block_config(tx_count: usize) -> BlockConfig {
    BlockConfig {
        tx_count,
        dependent_ratio: 0.3,
        erc20_ratio: None,
        sct_ratio: 0.9,
        chain_bias: 0.6,
        focus: None,
    }
}

/// Executes one generated block on top of `state`, absorbs its delta
/// into the flat store at `height`, and advances `state` to match.
fn advance(
    generator: &mut Generator,
    executor: &ParExecutor,
    db: &AccountsDb,
    state: &mut State,
    height: u64,
    tx_count: usize,
) {
    let block = generator.block(&block_config(tx_count));
    let result = executor.execute_block(state, &block);
    db.absorb(&result.delta, height);
    *state = result.state;
    generator.fx.state = state.clone();
}

/// Every live account and storage slot of `state` must read back
/// bit-identically through the flat store's `StateRead` face.
fn assert_reads_match(db: &AccountsDb, state: &State, what: &str) {
    for (addr, account) in state.iter_live_accounts() {
        assert!(db.read_exists(addr), "{what}: account missing");
        assert_eq!(db.read_nonce(addr), account.nonce, "{what}: nonce");
        assert_eq!(db.read_balance(addr), account.balance, "{what}: balance");
        assert_eq!(db.read_code(addr), account.code, "{what}: code");
        for (&slot, &value) in &account.storage {
            assert_eq!(db.read_storage(addr, slot), value, "{what}: slot");
        }
    }
}

#[test]
fn snapshot_survives_restart_and_continues() {
    let dir = scratch_dir("restart");
    let executor = ParExecutor::new(4);
    let mut generator = Generator::new(0xF11E);
    let mut state = generator.fx.state.clone();

    let db = AccountsDb::open(&dir).expect("open accounts db");
    db.bootstrap_from_state(&state, 0);

    for h in 1..=3 {
        advance(&mut generator, &executor, &db, &mut state, h, 48);
    }
    let head_root = state.merkle_root();
    db.snapshot(Some(head_root)).expect("snapshot chain head");
    drop(db);

    // Restart: the reopened store resumes at the snapshot...
    let reopened = AccountsDb::open(&dir).expect("reopen accounts db");
    assert_eq!(reopened.head_height(), 3);
    assert_eq!(reopened.snapshot_root(), Some(head_root));
    // ...and every account/slot reads back bit-identically — the write
    // cache is gone, so these all come through the index + files.
    assert_reads_match(&reopened, &state, "after restart");
    assert_eq!(reopened.cache_entries(), 0);

    // The chain keeps growing from the restored store.
    advance(&mut generator, &executor, &reopened, &mut state, 4, 48);
    assert_reads_match(&reopened, &state, "after restart + block");
    assert_eq!(reopened.head_height(), 4);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The satellite's sharp edge: the flush service has written (and
/// fsynced) storage files for a block, but the process dies before the
/// snapshot updates the MANIFEST. Reopen must land on the last durable
/// snapshot — the flushed-but-unmanifested files are invisible — and
/// re-absorbing the lost block reaches the same head.
#[test]
fn flush_without_manifest_is_dropped_on_reopen() {
    let dir = scratch_dir("crash");
    let executor = ParExecutor::new(2);
    let mut generator = Generator::new(0xC4A5);
    let mut state = generator.fx.state.clone();

    let db = AccountsDb::open(&dir).expect("open accounts db");
    db.bootstrap_from_state(&state, 0);
    advance(&mut generator, &executor, &db, &mut state, 1, 32);
    let durable_state = state.clone();
    let durable_root = state.merkle_root();
    db.snapshot(Some(durable_root)).expect("snapshot block 1");

    // Block 2 is absorbed AND flushed to a storage file — but no
    // snapshot follows, so the MANIFEST still vouches only for block 1.
    advance(&mut generator, &executor, &db, &mut state, 2, 32);
    let lost_block_files = {
        db.flush_up_to(u64::MAX).expect("flush block 2");
        db.stats().files
    };
    assert_eq!(db.head_height(), 2);
    drop(db); // crash between write-cache flush and MANIFEST update

    // Reopen: back at the durable snapshot; block 2's flushed records
    // must not leak in through the orphaned file.
    let reopened = AccountsDb::open(&dir).expect("reopen accounts db");
    assert_eq!(
        reopened.head_height(),
        1,
        "unmanifested flush leaked into the restored head"
    );
    assert_eq!(reopened.snapshot_root(), Some(durable_root));
    assert!(
        reopened.stats().files < lost_block_files,
        "orphaned storage file survived reopen"
    );
    assert_reads_match(&reopened, &durable_state, "after crash");

    // Replaying the lost block (the node would re-execute it) reaches
    // the same head state, overwriting the orphaned file id. The
    // deterministic generator is replayed from genesis to re-derive the
    // identical block 2; block 1's re-absorb is a no-op by content.
    let mut replay = Generator::new(0xC4A5);
    let mut replay_state = replay.fx.state.clone();
    advance(&mut replay, &executor, &reopened, &mut replay_state, 1, 32);
    assert_eq!(replay_state.merkle_root(), durable_root);
    advance(&mut replay, &executor, &reopened, &mut replay_state, 2, 32);
    assert_eq!(replay_state.merkle_root(), state.merkle_root());
    assert_reads_match(&reopened, &replay_state, "after replay");
    reopened
        .snapshot(Some(replay_state.merkle_root()))
        .expect("snapshot replayed head");
    drop(reopened);

    let recovered = AccountsDb::open(&dir).expect("reopen after replay");
    assert_eq!(recovered.head_height(), 2);
    assert_eq!(recovered.snapshot_root(), Some(state.merkle_root()));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Snapshots are atomic: a MANIFEST is either the old one or the new
/// one, never a torn in-between. Taking several snapshots in a row and
/// reopening after each must always land exactly on the latest.
#[test]
fn repeated_snapshots_always_reopen_at_the_latest() {
    let dir = scratch_dir("resnap");
    let executor = ParExecutor::new(2);
    let mut generator = Generator::new(0x5EED);
    let mut state = generator.fx.state.clone();

    let db = AccountsDb::open(&dir).expect("open accounts db");
    db.bootstrap_from_state(&state, 0);
    let mut roots: Vec<B256> = Vec::new();
    for h in 1..=3 {
        advance(&mut generator, &executor, &db, &mut state, h, 24);
        roots.push(state.merkle_root());
        db.snapshot(Some(roots[h as usize - 1])).expect("snapshot");
    }
    drop(db);

    let reopened = AccountsDb::open(&dir).expect("reopen accounts db");
    assert_eq!(reopened.head_height(), 3);
    assert_eq!(reopened.snapshot_root(), roots.last().copied());
    assert_reads_match(&reopened, &state, "after repeated snapshots");
    let _ = std::fs::remove_dir_all(&dir);
}
