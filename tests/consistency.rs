//! Blockchain-consistency tests: every parallel schedule the MTPU
//! produces must be *serializable* — functionally replaying transactions
//! in schedule order yields exactly the state the sequential reference
//! produced. This is the property the paper's scheduler must never break
//! (§2.1: "all nodes execute these transactions to complete a consistent
//! update to the system state").

use mtpu_repro::evm::{execute_transaction, NoopTracer};
use mtpu_repro::mtpu::sched::{simulate_st, simulate_sync, ScheduleResult};
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::workloads::{BlockConfig, Generator, PreparedBlock};

/// Replays the block's transactions in schedule completion order (ties by
/// block position) and returns the resulting state root.
fn replay_in_schedule_order(
    p: &PreparedBlock,
    schedule: &ScheduleResult,
) -> mtpu_repro::primitives::B256 {
    let mut order: Vec<usize> = (0..p.block.transactions.len()).collect();
    order.sort_by_key(|&i| (schedule.end[i], i));
    let mut state = p.state_before.clone();
    for &i in &order {
        execute_transaction(
            &mut state,
            &p.block.header,
            &p.block.transactions[i],
            &mut NoopTracer,
        )
        .expect("replay in dependency order validates");
    }
    state.state_root()
}

fn block_with_ratio(seed: u64, ratio: f64) -> (Generator, PreparedBlock) {
    let mut g = Generator::new(seed);
    let p = g.prepared_block(&BlockConfig {
        tx_count: 96,
        dependent_ratio: ratio,
        erc20_ratio: None,
        sct_ratio: 0.9,
        chain_bias: 0.7,
        focus: None,
    });
    (g, p)
}

#[test]
fn st_schedule_is_serializable_across_ratios() {
    for (seed, ratio) in [(21u64, 0.0), (22, 0.4), (23, 0.9)] {
        let (_g, p) = block_with_ratio(seed, ratio);
        let reference = p.state_after.state_root();
        let cfg = MtpuConfig {
            redundancy_opt: true,
            ..MtpuConfig::default()
        };
        let st = simulate_st(&p.jobs(&cfg, None), &p.graph, &cfg);
        assert!(
            p.graph.schedule_respects_dag(&st.start, &st.end),
            "ratio {ratio}"
        );
        assert_eq!(
            replay_in_schedule_order(&p, &st),
            reference,
            "ST schedule must be serializable at ratio {ratio}"
        );
    }
}

#[test]
fn sync_schedule_is_serializable() {
    let (_g, p) = block_with_ratio(31, 0.5);
    let reference = p.state_after.state_root();
    let cfg = MtpuConfig::default();
    let sync = simulate_sync(&p.jobs(&cfg, None), &p.graph, &cfg);
    assert!(p.graph.schedule_respects_dag(&sync.start, &sync.end));
    assert_eq!(replay_in_schedule_order(&p, &sync), reference);
}

#[test]
fn adversarial_reorder_breaks_state_root() {
    // Sanity check of the oracle itself: executing a dependent block in
    // *reverse* order must NOT reproduce the reference root (otherwise
    // the serializability assertions above would be vacuous).
    let (_g, p) = block_with_ratio(41, 0.8);
    let reference = p.state_after.state_root();
    let mut state = p.state_before.clone();
    let mut diverged = false;
    for tx in p.block.transactions.iter().rev() {
        if execute_transaction(&mut state, &p.block.header, tx, &mut NoopTracer).is_err() {
            diverged = true; // nonce order violated — divergence detected
            break;
        }
    }
    assert!(
        diverged || state.state_root() != reference,
        "reverse execution of a dependent block must diverge"
    );
}

#[test]
fn gas_accounting_is_schedule_independent() {
    // The paper's consistency requirement: "a transaction has only one
    // uniquely determined gas overhead". Gas from the scheduled replay
    // must equal the sequential receipts.
    let (_g, p) = block_with_ratio(51, 0.3);
    let cfg = MtpuConfig::default();
    let st = simulate_st(&p.jobs(&cfg, None), &p.graph, &cfg);
    let mut order: Vec<usize> = (0..p.block.transactions.len()).collect();
    order.sort_by_key(|&i| (st.end[i], i));
    let mut state = p.state_before.clone();
    for &i in &order {
        let r = execute_transaction(
            &mut state,
            &p.block.header,
            &p.block.transactions[i],
            &mut NoopTracer,
        )
        .expect("valid");
        assert_eq!(
            r.gas_used, p.receipts[i].gas_used,
            "tx {i} gas must be unique"
        );
        assert_eq!(r.success, p.receipts[i].success);
    }
}
