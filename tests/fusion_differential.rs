//! Differential fuzzing of superinstruction fusion: every program —
//! random byte soup, block-structured jump graphs, dispatcher-shaped
//! contracts, and the TOP8 fixtures — must produce bit-identical
//! receipts, logs, gas and state roots whether the interpreter
//! dispatches fused superinstructions or single opcodes.
//!
//! Driven by the in-repo deterministic [`SplitMix64`] generator so the
//! suite runs offline with no external crates. The fusion and prefetch
//! flags are process-global, so the tests in this binary serialize
//! around [`FUSION_LOCK`] and always restore the enabled state.
//!
//! The same harness also differentially tests the storage *prefetch*
//! path: plans built from the fusion sites issue speculative reads at
//! frame entry, and those must be observationally invisible — identical
//! receipts and roots prefetch-on vs prefetch-off, across thread counts
//! and across the in-memory and flat-store backends.

use mtpu_repro::accountsdb::AccountsDb;
use mtpu_repro::contracts::Fixture;
use mtpu_repro::evm::state::State;
use mtpu_repro::evm::trace::{NoopTracer, TraceRecorder, Tracer, TxTrace};
use mtpu_repro::evm::tx::{Block, BlockHeader, Receipt, Transaction};
use mtpu_repro::evm::{
    delta_merkle_root, execute_block, execute_transaction, set_fusion_enabled,
    set_prefetch_enabled, StateRead,
};
use mtpu_repro::parexec::{ParExecutor, TxHints};
use mtpu_repro::primitives::{Address, SplitMix64, B256, U256};
use std::sync::{Arc, Mutex};

/// Serializes flips of the process-global fusion/prefetch flags across
/// the tests in this binary.
static FUSION_LOCK: Mutex<()> = Mutex::new(());

fn fusion_guard() -> std::sync::MutexGuard<'static, ()> {
    FUSION_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const CONTRACT: u64 = 0xc0de;
const CALLER: u64 = 0xca11;

/// Executes `code` as a deployed contract called once with `input` and
/// `gas_limit`, returning the receipt and the post-state root.
fn run_one(code: &[u8], input: &[u8], gas_limit: u64, tracer: &mut impl Tracer) -> (Receipt, B256) {
    let contract = Address::from_low_u64(CONTRACT);
    let caller = Address::from_low_u64(CALLER);
    let mut state = State::new();
    state.deploy_code(contract, code.to_vec());
    state.credit(caller, U256::from(u64::MAX));
    state.finalize_tx();

    let tx = Transaction {
        nonce: 0,
        gas_price: U256::ONE,
        gas_limit,
        from: caller,
        to: Some(contract),
        value: U256::ZERO,
        data: input.to_vec(),
    };
    let receipt = execute_transaction(&mut state, &BlockHeader::default(), &tx, tracer)
        .expect("admission passes: funded caller, gas above intrinsic");
    (receipt, state.state_root())
}

/// Runs one program in both modes and asserts observational equality.
/// Returns the (shared) receipt so callers can follow up on successes.
fn assert_equivalent(label: &str, code: &[u8], input: &[u8], gas_limit: u64) -> Receipt {
    set_fusion_enabled(true);
    let (fused, fused_root) = run_one(code, input, gas_limit, &mut NoopTracer);
    set_fusion_enabled(false);
    let (plain, plain_root) = run_one(code, input, gas_limit, &mut NoopTracer);
    set_fusion_enabled(true);
    assert_eq!(
        fused, plain,
        "{label}: receipt diverged (code {code:02x?}, input {input:02x?}, gas {gas_limit})"
    );
    assert_eq!(
        fused_root, plain_root,
        "{label}: state root diverged (code {code:02x?}, input {input:02x?}, gas {gas_limit})"
    );
    fused
}

/// For successful programs the replayed trace must also be identical:
/// the fused dispatcher re-emits per-constituent steps. (Exceptional
/// paths may legally differ in step streams — lump-sum charging can stop
/// earlier or later within a fused site — while receipts stay equal.)
fn assert_trace_equivalent(label: &str, code: &[u8], input: &[u8], gas_limit: u64) {
    let traced = |on: bool| -> TxTrace {
        set_fusion_enabled(on);
        let mut rec = TraceRecorder::new();
        run_one(code, input, gas_limit, &mut rec);
        rec.into_trace()
    };
    let fused = traced(true);
    let plain = traced(false);
    set_fusion_enabled(true);
    assert_eq!(fused.steps, plain.steps, "{label}: step stream diverged");
    assert_eq!(
        fused.storage, plain.storage,
        "{label}: storage accesses diverged"
    );
}

fn random_input(rng: &mut SplitMix64) -> Vec<u8> {
    let len = rng.random_index(64);
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

fn random_gas(rng: &mut SplitMix64) -> u64 {
    rng.random_range(30_000..300_000)
}

/// Pure byte soup: any byte string is a program; fused and unfused must
/// agree even on invalid opcodes, truncated pushes and stack chaos.
#[test]
fn random_byte_soup_is_observationally_identical() {
    let _guard = fusion_guard();
    let mut rng = SplitMix64::seed_from_u64(0x5009_f00d);
    for case in 0..300 {
        let len = 1 + rng.random_index(160);
        let code: Vec<u8> = (0..len).map(|_| rng.next_u64() as u8).collect();
        let input = random_input(&mut rng);
        assert_equivalent(&format!("soup#{case}"), &code, &input, random_gas(&mut rng));
    }
}

/// Emits one random straight-line body instruction. Push-heavy so a
/// useful fraction of programs run deep before halting, with fusible
/// idioms (PUSH+SLOAD, DUP+SLOAD, SWAP+POP, PUSH+PUSH+arith) injected
/// deliberately.
fn push_body_op(rng: &mut SplitMix64, out: &mut Vec<u8>) {
    match rng.random_index(16) {
        0..=4 => {
            // PUSH1/PUSH2 of a small constant.
            if rng.random_bool(0.5) {
                out.push(0x60);
                out.push(rng.next_u64() as u8);
            } else {
                out.push(0x61);
                out.push((rng.next_u64() & 1) as u8);
                out.push(rng.next_u64() as u8);
            }
        }
        5 => {
            // PUSH+PUSH+arith: the constant-folding shape.
            out.push(0x60);
            out.push(rng.next_u64() as u8);
            out.push(0x60);
            out.push(rng.next_u64() as u8);
            out.push([0x01, 0x02, 0x03, 0x16, 0x17, 0x18, 0x1b, 0x1c][rng.random_index(8)]);
        }
        6 => {
            // PUSH+SLOAD on a small slot.
            out.push(0x60);
            out.push(rng.random_index(8) as u8);
            out.push(0x54);
        }
        7 => out.extend_from_slice(&[0x80 + rng.random_index(4) as u8, 0x54]), // DUPn+SLOAD
        8 => out.extend_from_slice(&[0x90, 0x50]),                             // SWAP1+POP
        9 => {
            // PUSH small value, PUSH small slot, SSTORE.
            out.push(0x60);
            out.push(rng.next_u64() as u8);
            out.push(0x60);
            out.push(rng.random_index(8) as u8);
            out.push(0x55);
        }
        10 => out.push(0x80 + rng.random_index(4) as u8), // DUP1..4
        11 => out.push(0x90 + rng.random_index(2) as u8), // SWAP1..2
        12 => out.push([0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x10, 0x11, 0x14][rng.random_index(9)]),
        13 => out.push([0x15, 0x19, 0x16, 0x17, 0x18, 0x1a][rng.random_index(6)]),
        14 => out.push([0x30, 0x33, 0x36, 0x3a, 0x43, 0x5a][rng.random_index(6)]),
        _ => {
            // PUSH1 offset, CALLDATALOAD.
            out.push(0x60);
            out.push(rng.random_index(40) as u8);
            out.push(0x35);
        }
    }
}

/// Block-structured programs: every block starts at a JUMPDEST, bodies
/// are random straight-line code, terminators are PUSH2-resolved JUMP /
/// JUMPI / ISZERO+PUSH2+JUMPI edges to random blocks (the fused branch
/// shapes), or a halt. Two-pass assembly patches the targets.
#[test]
fn random_jump_graphs_are_observationally_identical() {
    let _guard = fusion_guard();
    let mut rng = SplitMix64::seed_from_u64(0x5009_beef);
    for case in 0..150 {
        let nblocks = 3 + rng.random_index(5);
        // Pass 1: bodies (without terminators).
        let bodies: Vec<Vec<u8>> = (0..nblocks)
            .map(|_| {
                let mut b = vec![0x5b]; // JUMPDEST
                for _ in 0..rng.random_index(10) {
                    push_body_op(&mut rng, &mut b);
                }
                b
            })
            .collect();
        // Terminator kinds per block; each occupies a fixed 9 bytes so
        // offsets are computable before targets are known.
        let kinds: Vec<usize> = (0..nblocks).map(|_| rng.random_index(5)).collect();
        let mut offsets = Vec::with_capacity(nblocks);
        let mut off = 0usize;
        for body in &bodies {
            offsets.push(off);
            off += body.len() + 9;
        }
        let mut code = Vec::with_capacity(off);
        for (i, body) in bodies.iter().enumerate() {
            code.extend_from_slice(body);
            let target = offsets[rng.random_index(nblocks)] as u16;
            let cond = rng.next_u64() as u8;
            let mut term = match kinds[i] {
                // PUSH2 target; JUMP; padding
                0 => vec![0x61, (target >> 8) as u8, target as u8, 0x56, 0, 0, 0, 0, 0],
                // PUSH1 cond; PUSH2 target; JUMPI; padding
                1 => vec![
                    0x60,
                    cond,
                    0x61,
                    (target >> 8) as u8,
                    target as u8,
                    0x57,
                    0,
                    0,
                    0,
                ],
                // PUSH1 cond; ISZERO; PUSH2 target; JUMPI: the fused
                // require() shape.
                2 => vec![
                    0x60,
                    cond,
                    0x15,
                    0x61,
                    (target >> 8) as u8,
                    target as u8,
                    0x57,
                    0,
                    0,
                ],
                // PUSH1 32; PUSH1 0; RETURN; padding
                3 => vec![0x60, 0x20, 0x60, 0x00, 0xf3, 0, 0, 0, 0],
                // STOP; padding
                _ => vec![0x00; 9],
            };
            debug_assert_eq!(term.len(), 9);
            code.append(&mut term);
        }
        let input = random_input(&mut rng);
        let gas = random_gas(&mut rng);
        let label = format!("graph#{case}");
        let receipt = assert_equivalent(&label, &code, &input, gas);
        if receipt.success {
            assert_trace_equivalent(&label, &code, &input, gas);
        }
    }
}

/// Dispatcher-shaped contracts: the Solidity selector prologue, a random
/// number of PUSH4-selector arms, a fallback, and per-selector handlers
/// doing storage work — the SelectorDispatch superinstruction's home
/// turf. Calldata alternates between matching selectors, near-misses and
/// garbage.
#[test]
fn random_dispatchers_are_observationally_identical() {
    let _guard = fusion_guard();
    let mut rng = SplitMix64::seed_from_u64(0x5009_d15b);
    for case in 0..100 {
        let narms = 1 + rng.random_index(6);
        let selectors: Vec<u32> = (0..narms).map(|_| rng.next_u64() as u32).collect();

        // Layout: prologue (6 bytes), arms (11 bytes each: DUP1 PUSH4
        // sel EQ PUSH2 dest JUMPI), fallback (PUSH2 fb JUMP = 4 bytes),
        // then handlers and the fallback block.
        let arms_end = 6 + 11 * narms;
        let handlers_start = arms_end + 4;
        // Each handler: JUMPDEST; PUSH1 v; PUSH1 slot; SSTORE; PUSH1
        // slot; SLOAD; PUSH1 0; MSTORE; PUSH1 32; PUSH1 0; RETURN = 16B.
        let handler_len = 16;
        let fb = handlers_start + handler_len * narms;

        let mut code = vec![0x60, 0x00, 0x35, 0x60, 0xe0, 0x1c];
        for (i, sel) in selectors.iter().enumerate() {
            let dest = (handlers_start + handler_len * i) as u16;
            code.push(0x80);
            code.push(0x63);
            code.extend_from_slice(&sel.to_be_bytes());
            code.push(0x14);
            code.push(0x61);
            code.push((dest >> 8) as u8);
            code.push(dest as u8);
            code.push(0x57);
        }
        code.extend_from_slice(&[0x61, (fb >> 8) as u8, fb as u8, 0x56]);
        for i in 0..narms {
            let slot = (i % 4) as u8;
            code.extend_from_slice(&[
                0x5b,
                0x60,
                (0x11 * (i as u8 + 1)),
                0x60,
                slot,
                0x55,
                0x60,
                slot,
                0x54,
                0x60,
                0x00,
                0x52,
                0x60,
                0x20,
                0x60,
                0x00,
                0xf3,
            ]);
        }
        code.extend_from_slice(&[0x5b, 0x60, 0x00, 0x60, 0x00, 0xfd]); // fallback: REVERT(0,0)

        // Probe with matching selectors, a bit-flipped near miss, short
        // calldata and garbage.
        let mut probes: Vec<Vec<u8>> = selectors.iter().map(|s| s.to_be_bytes().to_vec()).collect();
        probes.push((selectors[0] ^ 1).to_be_bytes().to_vec());
        probes.push(vec![0xff; 2]);
        probes.push(random_input(&mut rng));
        for (p, input) in probes.iter().enumerate() {
            let gas = random_gas(&mut rng);
            let label = format!("dispatcher#{case}/{p}");
            let receipt = assert_equivalent(&label, &code, input, gas);
            if receipt.success {
                assert_trace_equivalent(&label, &code, input, gas);
            }
        }
    }
}

/// The TOP8 fixtures end-to-end: a mixed block of real contract calls
/// (ERC20 transfers, proxy dispatch, WETH deposits) must produce
/// identical receipts and an identical Merkle root fused vs unfused.
#[test]
fn top8_fixture_block_is_observationally_identical() {
    let _guard = fusion_guard();
    let mut rng = SplitMix64::seed_from_u64(0x5009_70b8);
    let users = mtpu_repro::contracts::fixture::USER_COUNT;
    let mut fx = Fixture::new();
    let mut txs = Vec::new();
    for i in 0..48u64 {
        let user = 1 + i % (users - 1);
        let to = Fixture::user_address((user + 3) % users).to_u256();
        let amount = U256::from(rng.random_range(1..500));
        match i % 3 {
            0 => txs.push(fx.call_tx(user, "Tether USD", "transfer", &[to, amount])),
            1 => txs.push(fx.call_tx(user, "FiatTokenProxy", "transfer", &[to, amount])),
            _ => {
                let mut tx = fx.call_tx(user, "WETH9", "deposit", &[]);
                tx.value = amount;
                txs.push(tx);
            }
        }
    }
    let block = Block {
        header: BlockHeader::default(),
        transactions: txs,
    };

    let run = |on: bool| -> (Vec<Receipt>, B256) {
        set_fusion_enabled(on);
        let mut state = fx.state.clone();
        let receipts = execute_block(&mut state, &block);
        (receipts, state.merkle_root())
    };
    let (fused_receipts, fused_root) = run(true);
    let (plain_receipts, plain_root) = run(false);
    set_fusion_enabled(true);

    assert!(fused_receipts.iter().all(|r| r.success));
    assert_eq!(fused_receipts, plain_receipts, "TOP8 receipts diverged");
    assert_eq!(fused_root, plain_root, "TOP8 merkle root diverged");
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mtpu-prefetch-diff-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A flat store holding exactly `base`, with everything already moved
/// into storage files so execution reads exercise the positional path.
fn flat_of(base: &State, tag: &str) -> (Arc<AccountsDb>, std::path::PathBuf) {
    let dir = scratch_dir(tag);
    let db = Arc::new(AccountsDb::open(&dir).expect("open flat store"));
    db.bootstrap_from_state(base, 0);
    db.flush_up_to(0).expect("flush bootstrap");
    (db, dir)
}

/// Prefetch on vs off over the TOP8 fixture block: receipts and merkle
/// roots must be bit-identical across thread counts and across the
/// in-memory and flat-store backends. Prefetched values are validated at
/// consume time, so a plan can only ever accelerate execution — never
/// change it.
#[test]
fn prefetch_grid_is_observationally_identical() {
    let _guard = fusion_guard();
    let mut rng = SplitMix64::seed_from_u64(0x93e7_0b8f);
    let users = mtpu_repro::contracts::fixture::USER_COUNT;
    let mut fx = Fixture::new();
    let mut txs = Vec::new();
    for i in 0..48u64 {
        let user = 1 + i % (users - 1);
        let to = Fixture::user_address((user + 3) % users).to_u256();
        let amount = U256::from(rng.random_range(1..500));
        match i % 3 {
            0 => txs.push(fx.call_tx(user, "Tether USD", "transfer", &[to, amount])),
            1 => txs.push(fx.call_tx(user, "FiatTokenProxy", "transfer", &[to, amount])),
            _ => {
                let mut tx = fx.call_tx(user, "WETH9", "deposit", &[]);
                tx.value = amount;
                txs.push(tx);
            }
        }
    }
    let block = Block {
        header: BlockHeader::default(),
        transactions: txs,
    };
    let base = fx.state.clone();

    // Sequential oracle, prefetch off.
    set_prefetch_enabled(false);
    let mut seq_state = base.clone();
    let seq_receipts = execute_block(&mut seq_state, &block);
    let want_root = seq_state.merkle_root();

    for prefetch in [true, false] {
        set_prefetch_enabled(prefetch);
        for threads in [1usize, 4, 8] {
            let exec = ParExecutor::new(threads);
            let tag = format!("prefetch={prefetch} threads={threads}");

            // In-memory State backend.
            let result = exec.execute_block(&base, &block);
            assert_eq!(result.receipts, seq_receipts, "{tag} state: receipts");
            assert_eq!(result.merkle_root(), want_root, "{tag} state: root");

            // Flat accounts-DB backend, warmed through the async hint
            // path as well when prefetch is on.
            let (db, dir) = flat_of(&base, &format!("grid-{prefetch}-{threads}"));
            if prefetch {
                db.enable_prefetch();
            }
            let r = exec.execute_block_delta(db.as_ref(), &block);
            assert_eq!(r.receipts, seq_receipts, "{tag} flat: receipts");
            assert_eq!(
                delta_merkle_root(&base, &r.delta),
                want_root,
                "{tag} flat: root"
            );
            drop(db);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
    set_prefetch_enabled(true);
}

/// The stale-prefetch scenario end-to-end: a counter contract whose
/// SLOAD key is statically resolvable (PUSH1 0; SLOAD), called by many
/// independent senders in one block. Speculative frames prefetch the
/// pre-block value of slot 0 while earlier transactions are busy
/// overwriting it — the commit-gate validation must catch every stale
/// serve and re-execute, landing on the exact sequential count.
#[test]
fn stale_prefetch_is_repaired_by_validation() {
    let _guard = fusion_guard();
    // PUSH1 0; SLOAD; PUSH1 1; ADD; PUSH1 0; SSTORE; STOP — a fusible
    // PushSload site, so the prefetch plan names slot 0.
    let code = vec![0x60, 0x00, 0x54, 0x60, 0x01, 0x01, 0x60, 0x00, 0x55, 0x00];
    let contract = Address::from_low_u64(CONTRACT);
    let senders: Vec<Address> = (1..=16).map(Address::from_low_u64).collect();

    let mut base = State::new();
    base.deploy_code(contract, code);
    for &s in &senders {
        base.credit(s, U256::from(u64::MAX));
    }
    base.finalize_tx();

    let block = Block {
        header: BlockHeader::default(),
        transactions: senders
            .iter()
            .map(|&s| Transaction {
                nonce: 0,
                gas_price: U256::ONE,
                gas_limit: 100_000,
                from: s,
                to: Some(contract),
                value: U256::ZERO,
                data: Vec::new(),
            })
            .collect(),
    };
    let want = U256::from(senders.len() as u64);

    set_prefetch_enabled(true);
    for threads in [1usize, 4, 8] {
        let exec = ParExecutor::new(threads);

        let result = exec.execute_block(&base, &block);
        assert!(result.receipts.iter().all(|r| r.success));
        assert_eq!(
            result.state.storage(contract, U256::ZERO),
            want,
            "threads={threads} state backend lost increments to stale prefetches"
        );

        // Flat backend with async hints: every transaction hints slot 0,
        // so the warm cache definitely holds the (soon-stale) pre-block
        // value while later transactions execute.
        let (db, dir) = flat_of(&base, &format!("stale-{threads}"));
        db.enable_prefetch();
        let hints: Vec<TxHints> = block
            .transactions
            .iter()
            .map(|_| TxHints {
                storage: vec![(contract, U256::ZERO)],
                accounts: vec![contract],
            })
            .collect();
        let dag = mtpu_repro::mtpu::sched::DepGraph::sender_order(&block.transactions);
        let r = exec.execute_block_delta_with_dag_hints(db.as_ref(), &block, &dag, &hints);
        assert!(r.receipts.iter().all(|rc| rc.success));
        db.absorb(&r.delta, 1);
        assert_eq!(
            db.read_storage(contract, U256::ZERO),
            want,
            "threads={threads} flat backend lost increments to stale prefetches"
        );
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
