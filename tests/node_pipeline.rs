//! The serializability oracle, extended to the front half of the node:
//! blocks *produced by the mempool + conflict-aware packer* must execute
//! on `parexec` — any thread count, synchronous or pipelined commit — to
//! receipts and merkle roots bit-identical to the sequential reference,
//! and packing itself must be a deterministic function of the pool state.

use mtpu_repro::accountsdb::{AccountsDb, FlushService};
use mtpu_repro::evm::execute_block as sequential;
use mtpu_repro::evm::state::State;
use mtpu_repro::evm::tx::{BlockHeader, Transaction};
use mtpu_repro::evm::{apply_updates, commit_full, delta_updates, AsyncCommitter};
use mtpu_repro::mempool::{
    BlockPacker, DriverConfig, Mempool, NodeDriver, PackedBlock, PackerConfig, PoolConfig, TxSource,
};
use mtpu_repro::parexec::ParExecutor;
use mtpu_repro::primitives::B256;
use mtpu_repro::statedb::{MemStore, StateCommitter};
use mtpu_repro::workloads::{ZipfConfig, ZipfGen};
use std::sync::Arc;

const THREADS: [usize; 3] = [1, 4, 8];

fn stream(seed: u64) -> ZipfGen {
    ZipfGen::new(
        seed,
        ZipfConfig {
            senders: 64,
            hot_ratio: 0.3,
            ..ZipfConfig::default()
        },
    )
}

/// A Zipf stream truncated to `left` transactions.
struct Bounded {
    gen: ZipfGen,
    left: usize,
}

impl TxSource for Bounded {
    fn next_tx(&mut self) -> Option<Transaction> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        Some(self.gen.next_tx())
    }
}

fn header(height: u64) -> BlockHeader {
    BlockHeader {
        height,
        ..Default::default()
    }
}

/// Packs a short chain of blocks the way the node would — admit, pack,
/// commit sequentially, observe — and returns the packed blocks plus the
/// sequential oracle (receipts, merkle roots) and the genesis state.
fn packed_chain(
    seed: u64,
    txs: usize,
    blocks: usize,
) -> (
    State,
    Vec<PackedBlock>,
    Vec<Vec<mtpu_repro::evm::Receipt>>,
    Vec<B256>,
) {
    let mut gen = stream(seed);
    let genesis = gen.genesis_state().clone();
    let pool = Mempool::new(PoolConfig::default());
    for _ in 0..txs {
        let _ = pool.admit(gen.next_tx(), &genesis);
    }

    let packer = BlockPacker::new(PackerConfig::default());
    let mut state = genesis.clone();
    let mut packed = Vec::new();
    let mut receipts = Vec::new();
    let mut roots = Vec::new();
    for h in 1..=blocks as u64 {
        let p = packer.pack(&pool, header(h));
        assert!(
            !p.block.transactions.is_empty(),
            "pool drained after {h} blocks"
        );
        receipts.push(sequential(&mut state, &p.block));
        roots.push(state.merkle_root());
        pool.observe_committed(&state);
        packed.push(p);
    }
    (genesis, packed, receipts, roots)
}

/// Packer-produced blocks execute identically in parallel — with the
/// packer's admission-time DAG — across thread counts, with both
/// synchronous root computation and the pipelined background committer.
#[test]
fn packed_blocks_parallel_equals_sequential() {
    let (genesis, packed, oracle_receipts, oracle_roots) = packed_chain(0x21F0, 400, 3);

    for &threads in &THREADS {
        let exec = ParExecutor::new(threads);

        // Synchronous: recompute the full root after every block.
        let mut state = genesis.clone();
        for (i, p) in packed.iter().enumerate() {
            let result = exec.execute_block_with_dag(&state, &p.block, &p.graph);
            assert_eq!(
                result.receipts, oracle_receipts[i],
                "receipts diverged at block {i} threads {threads}"
            );
            state = result.state;
            assert_eq!(
                state.merkle_root(),
                oracle_roots[i],
                "root diverged at block {i} threads {threads}"
            );
        }

        // Pipelined: all commits submitted to the background thread,
        // handles joined only at the end.
        let mut committer = StateCommitter::new(MemStore::new()).with_threads(threads);
        commit_full(&mut committer, &genesis);
        committer.commit();
        let committer = AsyncCommitter::new(committer);
        let mut state = genesis.clone();
        let mut handles = Vec::new();
        for p in &packed {
            let result = exec.execute_block_with_dag(&state, &p.block, &p.graph);
            handles.push(result.submit_commit(&committer, &state, false));
            state = result.state;
        }
        let roots: Vec<B256> = handles
            .iter()
            .map(|h| h.wait().expect("in-memory commit cannot fail"))
            .collect();
        assert_eq!(
            roots, oracle_roots,
            "pipelined roots diverged at threads {threads}"
        );
    }
}

/// Packing is a pure function of the pool snapshot: identically built
/// pools pack identical blocks, transaction for transaction.
#[test]
fn packing_is_deterministic_for_a_given_pool_state() {
    let (_, a, _, _) = packed_chain(0xDE7, 300, 2);
    let (_, b, _, _) = packed_chain(0xDE7, 300, 2);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.block.transactions, y.block.transactions);
        assert_eq!(x.independent, y.independent);
        assert_eq!(x.conflict_skips, y.conflict_skips);
    }
    // And the conflict-aware phase actually engages on a hot workload.
    assert!(a.iter().any(|p| p.independent > 0));
}

/// The end-to-end driver in deterministic (inline-ingest) mode: same
/// source, same configuration → the same per-block merkle root sequence,
/// with the final root chained from genesis.
#[test]
fn driver_is_deterministic_with_inline_ingest() {
    let run = |seed: u64| {
        let driver = NodeDriver::new(
            Mempool::new(PoolConfig::default()),
            BlockPacker::new(PackerConfig::default()),
            DriverConfig {
                blocks: 4,
                threads: 4,
                ingest_batch: 64,
                prefill: 256,
                background_ingest: false,
                ..DriverConfig::default()
            },
        );
        let source = Bounded {
            gen: stream(seed),
            left: 600,
        };
        let genesis = source.gen.genesis_state().clone();
        driver.run(genesis, source, header)
    };

    let a = run(0xFEED);
    let b = run(0xFEED);
    assert_eq!(a.blocks.len(), 4);
    assert!(a.chain.txs > 0);
    assert_ne!(a.genesis_root, a.final_root);
    assert_eq!(a.final_root, a.blocks.last().unwrap().merkle_root);
    let roots_a: Vec<B256> = a.blocks.iter().map(|s| s.merkle_root).collect();
    let roots_b: Vec<B256> = b.blocks.iter().map(|s| s.merkle_root).collect();
    assert_eq!(roots_a, roots_b, "driver runs diverged");
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("mtpu-node-pipeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The flat accounts-DB read path replaces the in-memory `State` as the
/// execution base: receipts and merkle roots must be bit-identical to
/// the sequential oracle at every thread count, with flushes racing
/// execution so reads cross the cache/index/file boundary mid-chain.
#[test]
fn flat_backend_receipts_and_roots_match_across_thread_counts() {
    let (genesis, packed, oracle_receipts, oracle_roots) = packed_chain(0x21F0, 400, 3);

    for &threads in &THREADS {
        let exec = ParExecutor::new(threads);
        let dir = scratch_dir(&format!("flat-{threads}"));
        let db = AccountsDb::open(&dir).expect("open accounts db");
        db.bootstrap_from_state(&genesis, 0);

        // The trie stays commitment-only: updates derive from the delta
        // against the flat base, never from a materialized `State`.
        let mut committer = StateCommitter::new(MemStore::new()).with_threads(threads);
        commit_full(&mut committer, &genesis);
        assert_eq!(committer.commit(), genesis.merkle_root());

        for (i, p) in packed.iter().enumerate() {
            let height = i as u64 + 1;
            let result = exec.execute_block_delta_with_dag(&db, &p.block, &p.graph);
            assert_eq!(
                result.receipts, oracle_receipts[i],
                "flat receipts diverged at block {i} threads {threads}"
            );
            let updates = delta_updates(&db, &result.delta);
            apply_updates(&mut committer, &updates);
            assert_eq!(
                committer.commit(),
                oracle_roots[i],
                "flat root diverged at block {i} threads {threads}"
            );
            db.absorb(&result.delta, height);
            // Flush behind the head so later blocks read flushed files
            // through the index, not just the write cache.
            db.flush_up_to(height.saturating_sub(1)).expect("flush");
        }

        let stats = db.stats();
        assert!(stats.flushes > 0, "flushes never ran at threads {threads}");
        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// End-to-end driver parity: the same deterministic (inline-ingest)
/// session on the `State` backend and on the flat accounts-DB backend
/// packs and commits the identical chain, and a snapshot → restore of
/// the flat store reopens at the same head root.
#[test]
fn flat_driver_matches_state_driver_and_survives_snapshot_restore() {
    let make_driver = || {
        NodeDriver::new(
            Mempool::new(PoolConfig::default()),
            BlockPacker::new(PackerConfig::default()),
            DriverConfig {
                blocks: 4,
                threads: 4,
                ingest_batch: 64,
                prefill: 256,
                background_ingest: false,
                ..DriverConfig::default()
            },
        )
    };
    let make_source = || Bounded {
        gen: stream(0xF1A7),
        left: 600,
    };
    let genesis = make_source().gen.genesis_state().clone();

    let baseline = make_driver().run(genesis.clone(), make_source(), header);

    let dir = scratch_dir("driver");
    let db = Arc::new(AccountsDb::open(&dir).expect("open accounts db"));
    db.bootstrap_from_state(&genesis, 0);
    let flush = FlushService::start(db.clone());
    let flat = make_driver().run_flat(&genesis, &db, &flush, make_source(), header);

    assert_eq!(baseline.blocks.len(), flat.blocks.len());
    for (a, b) in baseline.blocks.iter().zip(&flat.blocks) {
        assert_eq!(a.txs, b.txs, "packed size diverged at block {}", a.height);
        assert_eq!(
            a.merkle_root, b.merkle_root,
            "flat driver diverged at block {}",
            a.height
        );
    }
    assert_eq!(baseline.final_root, flat.final_root);
    let stats = flat.flat.as_ref().expect("flat stats populated");
    assert!(stats.cache_hits > 0, "execution never hit the write cache");

    // Snapshot, drop everything, reopen: the restored store carries the
    // chain head and the root it was snapshotted at.
    flush.quiesce();
    db.snapshot(Some(flat.final_root)).expect("snapshot");
    let head = db.head_height();
    drop(flush);
    drop(db);
    let restored = AccountsDb::open(&dir).expect("restore accounts db");
    assert_eq!(restored.snapshot_root(), Some(flat.final_root));
    assert_eq!(restored.head_height(), head);
    let _ = std::fs::remove_dir_all(&dir);
}
