//! Exhaustive opcode-level tests of the EVM interpreter, written against
//! the text assembler. Each program returns one 32-byte word; the helper
//! runs it in a throwaway contract and checks the result.

use mtpu_repro::asm::parse_asm;
use mtpu_repro::evm::interpreter::{CallParams, Evm, FrameResult};
use mtpu_repro::evm::state::State;
use mtpu_repro::evm::trace::{CallKind, NoopTracer};
use mtpu_repro::evm::tx::BlockHeader;
use mtpu_repro::evm::Halt;
use mtpu_repro::primitives::{Address, B256, U256};

/// Assembles and runs `src` (which must RETURN a word), returning it.
fn eval(src: &str) -> U256 {
    let res = run(src, Vec::new());
    assert!(res.success(), "program failed: {:?}\n{src}", res.halt);
    U256::from_be_slice(&res.output)
}

fn run(src: &str, input: Vec<u8>) -> FrameResult {
    let code = parse_asm(src).expect("assembles");
    let mut state = State::new();
    let contract = Address::from_low_u64(0xc0de);
    state.deploy_code(contract, code);
    state.credit(Address::from_low_u64(1), U256::from(1_000_000u64));
    let header = BlockHeader::default();
    let mut tracer = NoopTracer;
    let mut evm = Evm::new(
        &mut state,
        &header,
        Address::from_low_u64(1),
        U256::ONE,
        &mut tracer,
    );
    evm.call(CallParams {
        kind: CallKind::Call,
        caller: Address::from_low_u64(1),
        code_address: contract,
        storage_address: contract,
        value: U256::ZERO,
        transfers_value: false,
        input,
        gas: 10_000_000,
        is_static: false,
        depth: 0,
    })
}

/// `RET` suffix: store the stack top at 0 and return it.
const RET: &str = "PUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nRETURN";

fn u(v: u64) -> U256 {
    U256::from(v)
}

#[test]
fn arithmetic_opcodes() {
    assert_eq!(eval(&format!("PUSH1 3\nPUSH1 2\nADD\n{RET}")), u(5));
    assert_eq!(eval(&format!("PUSH1 3\nPUSH1 7\nSUB\n{RET}")), u(4));
    assert_eq!(eval(&format!("PUSH1 6\nPUSH1 7\nMUL\n{RET}")), u(42));
    assert_eq!(eval(&format!("PUSH1 3\nPUSH1 13\nDIV\n{RET}")), u(4));
    assert_eq!(eval(&format!("PUSH1 0\nPUSH1 13\nDIV\n{RET}")), u(0));
    assert_eq!(eval(&format!("PUSH1 5\nPUSH1 13\nMOD\n{RET}")), u(3));
    assert_eq!(eval(&format!("PUSH1 0\nPUSH1 13\nMOD\n{RET}")), u(0));
    // SDIV: -10 / 3 == -3 (two's complement).
    let minus_10 = U256::from(10u64).twos_neg();
    assert_eq!(
        eval(&format!("PUSH1 3\nPUSH32 0x{:064x}\nSDIV\n{RET}", minus_10)),
        u(3).twos_neg()
    );
    // SMOD takes the dividend's sign: -10 % 3 == -1.
    assert_eq!(
        eval(&format!("PUSH1 3\nPUSH32 0x{:064x}\nSMOD\n{RET}", minus_10)),
        U256::ONE.twos_neg()
    );
    // ADDMOD over 2^256: (MAX + 2) % 2 == 1.
    assert_eq!(
        eval(&format!(
            "PUSH1 2\nPUSH1 2\nPUSH32 0x{:064x}\nADDMOD\n{RET}",
            U256::MAX
        )),
        u(1)
    );
    assert_eq!(
        eval(&format!("PUSH1 8\nPUSH1 10\nPUSH1 10\nMULMOD\n{RET}")),
        u(4)
    );
    assert_eq!(eval(&format!("PUSH1 10\nPUSH1 2\nEXP\n{RET}")), u(1024));
    assert_eq!(eval(&format!("PUSH1 0\nPUSH1 0\nEXP\n{RET}")), u(1));
    // SIGNEXTEND byte 0 of 0xff.
    assert_eq!(
        eval(&format!("PUSH1 0xff\nPUSH1 0\nSIGNEXTEND\n{RET}")),
        U256::MAX
    );
}

#[test]
fn comparison_and_bitwise_opcodes() {
    assert_eq!(eval(&format!("PUSH1 2\nPUSH1 1\nLT\n{RET}")), u(1));
    assert_eq!(eval(&format!("PUSH1 1\nPUSH1 2\nGT\n{RET}")), u(1));
    let minus_1 = U256::MAX;
    assert_eq!(
        eval(&format!("PUSH1 1\nPUSH32 0x{minus_1:064x}\nSLT\n{RET}")),
        u(1),
        "-1 < 1 signed"
    );
    assert_eq!(
        eval(&format!("PUSH32 0x{minus_1:064x}\nPUSH1 1\nSGT\n{RET}")),
        u(1),
        "1 > -1 signed"
    );
    assert_eq!(eval(&format!("PUSH1 5\nPUSH1 5\nEQ\n{RET}")), u(1));
    assert_eq!(eval(&format!("PUSH1 0\nISZERO\n{RET}")), u(1));
    assert_eq!(eval(&format!("PUSH1 9\nISZERO\n{RET}")), u(0));
    assert_eq!(eval(&format!("PUSH1 0x0c\nPUSH1 0x0a\nAND\n{RET}")), u(8));
    assert_eq!(eval(&format!("PUSH1 0x0c\nPUSH1 0x0a\nOR\n{RET}")), u(0x0e));
    assert_eq!(eval(&format!("PUSH1 0x0c\nPUSH1 0x0a\nXOR\n{RET}")), u(6));
    assert_eq!(eval(&format!("PUSH1 0\nNOT\n{RET}")), U256::MAX);
    // BYTE 31 is the least significant byte.
    assert_eq!(
        eval(&format!("PUSH2 0xabcd\nPUSH1 31\nBYTE\n{RET}")),
        u(0xcd)
    );
    assert_eq!(eval(&format!("PUSH1 1\nPUSH1 4\nSHL\n{RET}")), u(16));
    assert_eq!(eval(&format!("PUSH1 16\nPUSH1 4\nSHR\n{RET}")), u(1));
    // SAR of a negative value keeps the sign.
    assert_eq!(
        eval(&format!("PUSH32 0x{minus_1:064x}\nPUSH1 8\nSAR\n{RET}")),
        U256::MAX
    );
}

#[test]
fn sha3_matches_keccak() {
    // keccak of one zero word.
    let expect = U256::from_be_bytes(mtpu_repro::primitives::keccak256(&[0u8; 32]));
    assert_eq!(eval(&format!("PUSH1 32\nPUSH1 0\nSHA3\n{RET}")), expect);
}

#[test]
fn environment_opcodes() {
    assert_eq!(
        eval(&format!("ADDRESS\n{RET}")),
        Address::from_low_u64(0xc0de).to_u256()
    );
    assert_eq!(
        eval(&format!("CALLER\n{RET}")),
        Address::from_low_u64(1).to_u256()
    );
    assert_eq!(
        eval(&format!("ORIGIN\n{RET}")),
        Address::from_low_u64(1).to_u256()
    );
    assert_eq!(eval(&format!("CALLVALUE\n{RET}")), u(0));
    assert_eq!(eval(&format!("GASPRICE\n{RET}")), u(1));
    assert_eq!(
        eval(&format!("CODESIZE\n{RET}"))
            .try_to_u64()
            .map(|v| v > 0),
        Some(true)
    );
    let h = BlockHeader::default();
    assert_eq!(eval(&format!("NUMBER\n{RET}")), u(h.height));
    assert_eq!(eval(&format!("TIMESTAMP\n{RET}")), u(h.timestamp));
    assert_eq!(eval(&format!("GASLIMIT\n{RET}")), u(h.gas_limit));
    assert_eq!(eval(&format!("COINBASE\n{RET}")), h.coinbase.to_u256());
    assert_eq!(eval(&format!("DIFFICULTY\n{RET}")), h.difficulty);
    // Out-of-window BLOCKHASH is zero.
    assert_eq!(eval(&format!("PUSH1 99\nBLOCKHASH\n{RET}")), u(0));
}

#[test]
fn calldata_opcodes() {
    let input = vec![0x11, 0x22, 0x33, 0x44];
    let res = run(&format!("CALLDATASIZE\n{RET}"), input.clone());
    assert_eq!(U256::from_be_slice(&res.output), u(4));
    // CALLDATALOAD zero-pads past the end.
    let res = run(&format!("PUSH1 0\nCALLDATALOAD\n{RET}"), input.clone());
    let mut expect = [0u8; 32];
    expect[..4].copy_from_slice(&input);
    assert_eq!(res.output, expect.to_vec());
    // CALLDATACOPY into memory.
    let res = run(
        &format!("PUSH1 4\nPUSH1 0\nPUSH1 0\nCALLDATACOPY\nPUSH1 0\nMLOAD\n{RET}"),
        input,
    );
    assert_eq!(
        U256::from_be_slice(&res.output),
        U256::from_be_slice(&expect)
    );
}

#[test]
fn memory_opcodes() {
    assert_eq!(
        eval(&format!(
            "PUSH1 0xAB\nPUSH1 64\nMSTORE\nPUSH1 64\nMLOAD\n{RET}"
        )),
        u(0xab)
    );
    // MSTORE8 writes one byte.
    assert_eq!(
        eval(&format!(
            "PUSH2 0x1234\nPUSH1 31\nMSTORE8\nPUSH1 0\nMLOAD\n{RET}"
        )),
        u(0x34)
    );
    // MSIZE grows in words.
    assert_eq!(
        eval(&format!("PUSH1 1\nPUSH1 33\nMSTORE\nMSIZE\n{RET}")),
        u(96)
    );
}

#[test]
fn storage_opcodes() {
    assert_eq!(
        eval(&format!("PUSH1 7\nPUSH1 9\nSSTORE\nPUSH1 9\nSLOAD\n{RET}")),
        u(7)
    );
    // Uninitialized slots read zero.
    assert_eq!(eval(&format!("PUSH1 42\nSLOAD\n{RET}")), u(0));
}

#[test]
fn stack_opcodes() {
    assert_eq!(eval(&format!("PUSH1 1\nPUSH1 2\nPOP\n{RET}")), u(1));
    // DUP16 reaches 16 deep.
    let pushes: String = (1..=16).map(|i| format!("PUSH1 {i}\n")).collect();
    assert_eq!(eval(&format!("{pushes}DUP16\n{RET}")), u(1));
    // SWAP16.
    assert_eq!(eval(&format!("PUSH1 99\n{pushes}SWAP16\n{RET}")), u(99));
    // PUSH32 round-trips.
    let v = U256::MAX - u(1);
    assert_eq!(eval(&format!("PUSH32 0x{v:064x}\n{RET}")), v);
}

#[test]
fn jump_opcodes() {
    // Conditional not taken falls through.
    assert_eq!(
        eval(&format!(
            "PUSH1 0\nPUSH @skip\nJUMPI\nPUSH1 7\nPUSH @end\nJUMP\nskip:\nPUSH1 9\nend:\n{RET}"
        )),
        u(7)
    );
    // Conditional taken.
    assert_eq!(
        eval(&format!(
            "PUSH1 1\nPUSH @skip\nJUMPI\nPUSH1 7\nPUSH @end\nJUMP\nskip:\nPUSH1 9\nend:\n{RET}"
        )),
        u(9)
    );
    // PC pushes the program counter of the PC instruction itself.
    assert_eq!(eval(&format!("PC\n{RET}")), u(0));
    assert_eq!(eval(&format!("PUSH1 0\nPOP\nPC\n{RET}")), u(3));
}

#[test]
fn log_opcodes_capture_topics_and_data() {
    let code = parse_asm(
        "PUSH1 0xEE\nPUSH1 0\nMSTORE\nPUSH1 3\nPUSH1 2\nPUSH1 1\nPUSH1 32\nPUSH1 0\nLOG3\nPUSH1 1\nPUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nRETURN",
    )
    .unwrap();
    let mut state = State::new();
    let contract = Address::from_low_u64(0xc0de);
    state.deploy_code(contract, code);
    let header = BlockHeader::default();
    let mut tracer = NoopTracer;
    let mut evm = Evm::new(
        &mut state,
        &header,
        Address::from_low_u64(1),
        U256::ONE,
        &mut tracer,
    );
    let res = evm.call(CallParams {
        kind: CallKind::Call,
        caller: Address::from_low_u64(1),
        code_address: contract,
        storage_address: contract,
        value: U256::ZERO,
        transfers_value: false,
        input: vec![],
        gas: 1_000_000,
        is_static: false,
        depth: 0,
    });
    assert!(res.success());
    assert_eq!(evm.logs.len(), 1);
    let log = &evm.logs[0];
    assert_eq!(log.address, contract);
    assert_eq!(
        log.topics,
        vec![
            B256::from_u256(u(1)),
            B256::from_u256(u(2)),
            B256::from_u256(u(3))
        ]
    );
    assert_eq!(log.data, U256::from(0xeeu64).to_be_bytes().to_vec());
}

#[test]
fn revert_returns_payload() {
    let res = run(
        "PUSH1 0xAA\nPUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nREVERT",
        vec![],
    );
    assert_eq!(res.halt, Halt::Revert);
    assert_eq!(U256::from_be_slice(&res.output), u(0xaa));
    assert!(res.gas_left > 0);
}

#[test]
fn invalid_opcode_consumes_all_gas() {
    let res = run("INVALID", vec![]);
    assert!(!res.success());
    assert_eq!(res.gas_left, 0);
}

#[test]
fn gas_decreases_monotonically() {
    // Two GAS reads: the second sees less gas.
    let res = run(
        "GAS\nGAS\nPUSH1 0\nMSTORE\nPUSH1 0x20\nMSTORE\nPUSH1 64\nPUSH1 0\nRETURN",
        vec![],
    );
    assert!(res.success());
    // Memory: [second_read, first_read] (stack order).
    let second = U256::from_be_slice(&res.output[..32]);
    let first = U256::from_be_slice(&res.output[32..]);
    assert!(second < first, "{second} < {first}");
}

#[test]
fn returndata_opcodes() {
    // Call a child that returns 0x42; check RETURNDATASIZE/COPY.
    let mut state = State::new();
    let child = Address::from_low_u64(0xbeef);
    state.deploy_code(
        child,
        parse_asm("PUSH1 0x42\nPUSH1 0\nMSTORE\nPUSH1 32\nPUSH1 0\nRETURN").unwrap(),
    );
    let caller_code = parse_asm(
        "PUSH1 0\nPUSH1 0\nPUSH1 0\nPUSH1 0\nPUSH1 0\nPUSH2 0xbeef\nGAS\nCALL\nPOP\nRETURNDATASIZE\nPUSH1 0\nPUSH1 0\nRETURNDATACOPY\nRETURNDATASIZE\nPUSH1 0\nRETURN",
    )
    .unwrap();
    let contract = Address::from_low_u64(0xc0de);
    state.deploy_code(contract, caller_code);
    let header = BlockHeader::default();
    let mut tracer = NoopTracer;
    let mut evm = Evm::new(
        &mut state,
        &header,
        Address::from_low_u64(1),
        U256::ONE,
        &mut tracer,
    );
    let res = evm.call(CallParams {
        kind: CallKind::Call,
        caller: Address::from_low_u64(1),
        code_address: contract,
        storage_address: contract,
        value: U256::ZERO,
        transfers_value: false,
        input: vec![],
        gas: 1_000_000,
        is_static: false,
        depth: 0,
    });
    assert!(res.success());
    assert_eq!(U256::from_be_slice(&res.output), u(0x42));
}

#[test]
fn ext_opcodes_see_other_accounts() {
    let mut state = State::new();
    let other = Address::from_low_u64(0x777);
    state.deploy_code(other, vec![0x60, 0x00, 0x00]);
    state.credit(other, u(12345));
    let contract = Address::from_low_u64(0xc0de);
    state.deploy_code(
        contract,
        parse_asm(&format!("PUSH2 0x0777\nBALANCE\n{RET}")).unwrap(),
    );
    let header = BlockHeader::default();
    let mut tracer = NoopTracer;
    let mut evm = Evm::new(
        &mut state,
        &header,
        Address::from_low_u64(1),
        U256::ONE,
        &mut tracer,
    );
    let mk = |code_addr| CallParams {
        kind: CallKind::Call,
        caller: Address::from_low_u64(1),
        code_address: code_addr,
        storage_address: code_addr,
        value: U256::ZERO,
        transfers_value: false,
        input: vec![],
        gas: 1_000_000,
        is_static: false,
        depth: 0,
    };
    let res = evm.call(mk(contract));
    assert!(res.success());
    assert_eq!(U256::from_be_slice(&res.output), u(12345));

    // EXTCODESIZE of the other account.
    evm.state.deploy_code(
        contract,
        parse_asm(&format!("PUSH2 0x0777\nEXTCODESIZE\n{RET}")).unwrap(),
    );
    let res = evm.call(mk(contract));
    assert_eq!(U256::from_be_slice(&res.output), u(3));

    // EXTCODEHASH matches keccak of the code.
    evm.state.deploy_code(
        contract,
        parse_asm(&format!("PUSH2 0x0777\nEXTCODEHASH\n{RET}")).unwrap(),
    );
    let res = evm.call(mk(contract));
    assert_eq!(
        U256::from_be_slice(&res.output),
        B256::keccak(&[0x60, 0x00, 0x00]).to_u256()
    );
}

#[test]
fn selfdestruct_moves_balance() {
    let mut state = State::new();
    let contract = Address::from_low_u64(0xc0de);
    state.deploy_code(contract, parse_asm("PUSH2 0x0999\nSELFDESTRUCT").unwrap());
    state.credit(contract, u(500));
    let header = BlockHeader::default();
    let mut tracer = NoopTracer;
    let mut evm = Evm::new(
        &mut state,
        &header,
        Address::from_low_u64(1),
        U256::ONE,
        &mut tracer,
    );
    let res = evm.call(CallParams {
        kind: CallKind::Call,
        caller: Address::from_low_u64(1),
        code_address: contract,
        storage_address: contract,
        value: U256::ZERO,
        transfers_value: false,
        input: vec![],
        gas: 1_000_000,
        is_static: false,
        depth: 0,
    });
    assert!(res.success());
    assert_eq!(evm.state.balance(Address::from_low_u64(0x999)), u(500));
    evm.state.finalize_tx();
    assert!(
        !state.exists(contract),
        "destructed account removed at commit"
    );
}

#[test]
fn create_opcode_deploys_child() {
    // Init code returning one STOP byte, written via MSTORE8.
    let src = "
        PUSH1 0x60      ; init: PUSH1
        PUSH1 0
        MSTORE8
        PUSH1 0x00      ; init: 0 (PUSH1 0x00 STOP => code '00' at offset 2)
        PUSH1 1
        MSTORE8
        PUSH1 2
        PUSH1 0
        PUSH1 0
        CREATE
        PUSH1 0
        MSTORE
        PUSH1 32
        PUSH1 0
        RETURN
    ";
    let res = run(src, vec![]);
    assert!(res.success());
    let created = Address::from_u256(U256::from_be_slice(&res.output));
    assert_ne!(created, Address::ZERO);
    // Address derivation: creator nonce was 0 before CREATE... the
    // contract account's own nonce starts at 0 and bumps on CREATE.
    assert_eq!(created, Address::create(Address::from_low_u64(0xc0de), 0));
}

#[test]
fn call_depth_limit_enforced() {
    // A contract that calls itself forever; the flag of the deepest CALL
    // is 0 but everything unwinds successfully.
    let src = "
        PUSH1 0
        PUSH1 0
        PUSH1 0
        PUSH1 0
        PUSH1 0
        PUSH2 0xc0de
        GAS
        CALL
        PUSH1 0
        MSTORE
        PUSH1 32
        PUSH1 0
        RETURN
    ";
    let res = run(src, vec![]);
    assert!(res.success(), "recursion bottoms out via depth/gas limits");
}

#[test]
fn create2_address_is_salted() {
    // Deploy two children from the same init code with different salts;
    // addresses must match the CREATE2 derivation and differ.
    let src = |salt: u8| {
        format!(
            "PUSH1 0x00\nPUSH1 0\nMSTORE8\nPUSH1 {salt}\nPUSH1 1\nPUSH1 0\nPUSH1 0\nCREATE2\n{RET}"
        )
    };
    let a = Address::from_u256(eval(&src(1)));
    let b = Address::from_u256(eval(&src(2)));
    assert_ne!(a, b);
    // Matches the derivation for init code [0x00].
    let creator = Address::from_low_u64(0xc0de);
    let expect = Address::create2(creator, B256::from_u256(u(1)), &[0x00]);
    assert_eq!(a, expect);
}

#[test]
fn delegatecall_preserves_caller_and_storage() {
    // Library writes CALLER into slot 0 of *the caller's* storage.
    let mut state = State::new();
    let lib = Address::from_low_u64(0x111);
    state.deploy_code(lib, parse_asm("CALLER\nPUSH1 0\nSSTORE\nSTOP").unwrap());
    let proxy = Address::from_low_u64(0xc0de);
    state.deploy_code(
        proxy,
        parse_asm("PUSH1 0\nPUSH1 0\nPUSH1 0\nPUSH1 0\nPUSH2 0x0111\nGAS\nDELEGATECALL\nSTOP")
            .unwrap(),
    );
    let header = BlockHeader::default();
    let origin = Address::from_low_u64(0xabc);
    let mut tracer = NoopTracer;
    let mut evm = Evm::new(&mut state, &header, origin, U256::ONE, &mut tracer);
    let res = evm.call(CallParams {
        kind: CallKind::Call,
        caller: origin,
        code_address: proxy,
        storage_address: proxy,
        value: U256::ZERO,
        transfers_value: false,
        input: vec![],
        gas: 1_000_000,
        is_static: false,
        depth: 0,
    });
    assert!(res.success());
    // The delegated frame saw the ORIGINAL caller and wrote the PROXY's
    // storage; the library's storage is untouched.
    assert_eq!(evm.state.storage(proxy, U256::ZERO), origin.to_u256());
    assert_eq!(evm.state.storage(lib, U256::ZERO), U256::ZERO);
}

#[test]
fn callcode_uses_caller_storage_with_own_sender() {
    let mut state = State::new();
    let lib = Address::from_low_u64(0x222);
    state.deploy_code(lib, parse_asm("CALLER\nPUSH1 0\nSSTORE\nSTOP").unwrap());
    let host = Address::from_low_u64(0xc0de);
    state.deploy_code(
        host,
        parse_asm("PUSH1 0\nPUSH1 0\nPUSH1 0\nPUSH1 0\nPUSH1 0\nPUSH2 0x0222\nGAS\nCALLCODE\nSTOP")
            .unwrap(),
    );
    let header = BlockHeader::default();
    let origin = Address::from_low_u64(0xabc);
    let mut tracer = NoopTracer;
    let mut evm = Evm::new(&mut state, &header, origin, U256::ONE, &mut tracer);
    let res = evm.call(CallParams {
        kind: CallKind::Call,
        caller: origin,
        code_address: host,
        storage_address: host,
        value: U256::ZERO,
        transfers_value: false,
        input: vec![],
        gas: 1_000_000,
        is_static: false,
        depth: 0,
    });
    assert!(res.success());
    // CALLCODE: storage = host's, but msg.sender = the host itself.
    assert_eq!(evm.state.storage(host, U256::ZERO), host.to_u256());
}
