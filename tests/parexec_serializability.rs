//! The serializability oracle for the parallel execution engine:
//! across the dependent-ratio × thread-count grid, `ParExecutor` must
//! produce receipts and a final state **bit-identical** to the sequential
//! reference executor — with both the weak sender-order DAG and the
//! precise consensus-stage conflict DAG.

use mtpu_repro::evm::execute_block as sequential;
use mtpu_repro::evm::{commit_block_delta, commit_full, AsyncCommitter};
use mtpu_repro::parexec::ParExecutor;
use mtpu_repro::primitives::B256;
use mtpu_repro::statedb::{MemStore, StateCommitter};
use mtpu_repro::workloads::{BlockConfig, Generator};

const RATIOS: [f64; 4] = [0.0, 0.2, 0.5, 1.0];
const THREADS: [usize; 4] = [1, 2, 4, 8];

fn config(tx_count: usize, dependent_ratio: f64) -> BlockConfig {
    BlockConfig {
        tx_count,
        dependent_ratio,
        erc20_ratio: None,
        sct_ratio: 0.9,
        chain_bias: 0.5,
        focus: None,
    }
}

/// The full grid with the sender-order DAG (no consensus traces): every
/// conflict the DAG misses must be repaired by validation + re-execution.
#[test]
fn parallel_equals_sequential_with_sender_order_dag() {
    for (r, &ratio) in RATIOS.iter().enumerate() {
        let mut generator = Generator::new(0x5EED + r as u64);
        let prepared = generator.prepared_block(&config(48, ratio));
        let base = &prepared.state_before;
        let mut seq_state = base.clone();
        let seq_receipts = sequential(&mut seq_state, &prepared.block);

        for &threads in &THREADS {
            let result = ParExecutor::new(threads).execute_block(base, &prepared.block);
            assert_eq!(
                result.receipts, seq_receipts,
                "receipts diverged at ratio {ratio} threads {threads}"
            );
            assert_eq!(
                result.state.state_root(),
                seq_state.state_root(),
                "state root diverged at ratio {ratio} threads {threads}"
            );
            assert_eq!(result.stats.txs, 48);
            assert_eq!(
                result.stats.executions,
                48 + result.stats.reexecutions,
                "every tx executes once plus its conflict repairs"
            );
        }
    }
}

/// The full grid with the consensus-stage conflict DAG the generator
/// recorded (the paper's §2.2.2 flow).
#[test]
fn parallel_equals_sequential_with_conflict_dag() {
    for (r, &ratio) in RATIOS.iter().enumerate() {
        let mut generator = Generator::new(0xDA6 + r as u64);
        let prepared = generator.prepared_block(&config(48, ratio));
        let base = &prepared.state_before;

        for &threads in &THREADS {
            let result = ParExecutor::new(threads).execute_block_with_dag(
                base,
                &prepared.block,
                &prepared.graph,
            );
            // The generator already ran the block sequentially while
            // preparing it — its recorded receipts and post-state are the
            // oracle here.
            assert_eq!(
                result.receipts, prepared.receipts,
                "receipts diverged at ratio {ratio} threads {threads}"
            );
            assert_eq!(
                result.state.state_root(),
                prepared.state_after.state_root(),
                "state root diverged at ratio {ratio} threads {threads}"
            );
        }
    }
}

/// Applying the returned `BlockDelta` to a fresh copy of the base yields
/// the same state as the `state` field — the delta is a faithful,
/// standalone representation of the block's effects.
#[test]
fn block_delta_reproduces_final_state() {
    let mut generator = Generator::new(0xD317A);
    let prepared = generator.prepared_block(&config(32, 0.5));
    let base = &prepared.state_before;
    let result = ParExecutor::new(4).execute_block(base, &prepared.block);

    let mut replayed = base.clone();
    result.delta.apply_to(&mut replayed);
    assert_eq!(replayed.state_root(), result.state.state_root());
    assert_eq!(replayed.state_root(), prepared.state_after.state_root());
}

/// The authenticated-commitment oracle: across thread counts and
/// speculative retry caps, the parallel engine must land on the same
/// 32-byte Merkle Patricia Trie root as the sequential reference — both
/// when rebuilt from the post-state and when committed incrementally
/// from the block's delta.
#[test]
fn merkle_root_matches_across_threads_and_retry_caps() {
    for (r, &ratio) in [0.0, 0.5, 1.0].iter().enumerate() {
        let mut generator = Generator::new(0x3007 + r as u64);
        let prepared = generator.prepared_block(&config(40, ratio));
        let base = &prepared.state_before;
        let mut seq_state = base.clone();
        sequential(&mut seq_state, &prepared.block);
        let oracle = seq_state.merkle_root();
        assert_ne!(oracle, base.merkle_root(), "block must change state");

        for &threads in &[1usize, 4, 8] {
            for &cap in &[0usize, 1, 8] {
                let exec = ParExecutor::new(threads).with_retry_cap(cap);
                let result = exec.execute_block(base, &prepared.block);
                assert_eq!(
                    result.merkle_root(),
                    oracle,
                    "post-state merkle root diverged at threads {threads} cap {cap}"
                );
                assert_eq!(
                    result.delta_merkle_root(base),
                    oracle,
                    "incremental merkle root diverged at threads {threads} cap {cap}"
                );
            }
        }
    }
}

/// The execute/commit-overlap oracle: a multi-block chain is executed
/// across the thread-count × retry-cap grid and committed two ways —
/// synchronously after each block, and pipelined through the background
/// commit thread (`BlockResult::submit_commit` / `AsyncCommitter`) with
/// the handles only joined after every block was submitted. Every
/// configuration must produce the same per-block root sequence as the
/// sequential reference.
#[test]
fn async_commit_pipeline_matches_synchronous_roots() {
    const CHAIN: usize = 3;

    // Build the chain once; the sequential executor is the oracle.
    let mut generator = Generator::new(0xA57C);
    let genesis = generator.fx.state.clone();
    let mut blocks = Vec::new();
    let mut oracle_roots = Vec::new();
    let mut seq_state = genesis.clone();
    for _ in 0..CHAIN {
        let block = generator.block(&config(32, 0.4));
        sequential(&mut seq_state, &block);
        generator.fx.state = seq_state.clone();
        oracle_roots.push(seq_state.merkle_root());
        blocks.push(block);
    }

    let seeded = |threads: usize| {
        let mut c = StateCommitter::new(MemStore::new()).with_threads(threads);
        commit_full(&mut c, &genesis);
        c.commit();
        c
    };

    for &threads in &[1usize, 4, 8] {
        for &cap in &[0usize, 8] {
            let exec = ParExecutor::new(threads).with_retry_cap(cap);

            // Synchronous: commit each block's delta before executing
            // the next.
            let mut committer = seeded(threads);
            let mut state = genesis.clone();
            let mut sync_roots = Vec::new();
            for block in &blocks {
                let result = exec.execute_block(&state, block);
                sync_roots.push(commit_block_delta(&mut committer, &state, &result.delta));
                state = result.state;
            }
            assert_eq!(
                sync_roots, oracle_roots,
                "synchronous roots diverged at threads {threads} cap {cap}"
            );

            // Pipelined: submit every block's commit to the background
            // thread, joining the handles only at the end — block N+1
            // executes while block N hashes.
            let committer = AsyncCommitter::new(seeded(threads));
            let mut state = genesis.clone();
            let mut handles = Vec::new();
            for block in &blocks {
                let result = exec.execute_block(&state, block);
                handles.push(result.submit_commit(&committer, &state, false));
                state = result.state;
            }
            let pipe_roots: Vec<B256> = handles
                .iter()
                .map(|h| h.wait().expect("in-memory commit cannot fail"))
                .collect();
            assert_eq!(
                pipe_roots, oracle_roots,
                "pipelined roots diverged at threads {threads} cap {cap}"
            );
        }
    }
}

/// Superinstruction fusion must be invisible to the serializability
/// oracle: with fusion on and off, sequentially and in parallel at every
/// thread count, the engine lands on receipts and Merkle roots identical
/// to the sequential-unfused reference.
#[test]
fn fusion_is_invisible_to_the_serializability_oracle() {
    use mtpu_repro::evm::set_fusion_enabled;

    let mut generator = Generator::new(0xF05E);
    let prepared = generator.prepared_block(&config(48, 0.4));
    let base = &prepared.state_before;

    // Sequential-unfused is the reference for the whole grid.
    set_fusion_enabled(false);
    let mut oracle_state = base.clone();
    let oracle_receipts = sequential(&mut oracle_state, &prepared.block);
    let oracle_root = oracle_state.merkle_root();

    for fused in [false, true] {
        set_fusion_enabled(fused);
        let mut seq_state = base.clone();
        assert_eq!(
            sequential(&mut seq_state, &prepared.block),
            oracle_receipts,
            "sequential receipts diverged with fusion={fused}"
        );
        assert_eq!(
            seq_state.merkle_root(),
            oracle_root,
            "sequential merkle root diverged with fusion={fused}"
        );
        for &threads in &[1usize, 4, 8] {
            let result = ParExecutor::new(threads).execute_block(base, &prepared.block);
            assert_eq!(
                result.receipts, oracle_receipts,
                "parallel receipts diverged with fusion={fused} threads {threads}"
            );
            assert_eq!(
                result.merkle_root(),
                oracle_root,
                "parallel merkle root diverged with fusion={fused} threads {threads}"
            );
            assert_eq!(
                result.delta_merkle_root(base),
                oracle_root,
                "incremental merkle root diverged with fusion={fused} threads {threads}"
            );
        }
    }
    set_fusion_enabled(true);
}

/// Determinism across repeated parallel runs: same block, same threads,
/// same results — scheduling noise must never leak into outputs.
#[test]
fn repeated_runs_are_deterministic() {
    let mut generator = Generator::new(0x4E9EA7);
    let prepared = generator.prepared_block(&config(40, 0.3));
    let base = &prepared.state_before;
    let exec = ParExecutor::new(4);
    let first = exec.execute_block(base, &prepared.block);
    for _ in 0..3 {
        let again = exec.execute_block(base, &prepared.block);
        assert_eq!(again.receipts, first.receipts);
        assert_eq!(again.state.state_root(), first.state.state_root());
    }
}
