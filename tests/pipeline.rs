//! End-to-end pipeline tests across all crates: workload → trace → DAG →
//! timing model → schedules, plus hotspot-analysis soundness on real
//! contract paths.

use mtpu_repro::contracts::Fixture;
use mtpu_repro::evm::opcode::Opcode;
use mtpu_repro::evm::{trace_transaction, BlockHeader};
use mtpu_repro::mtpu::hotspot::{analyze_path, ContractTable};
use mtpu_repro::mtpu::pu::{Pu, StateBuffer, TxJob};
use mtpu_repro::mtpu::sched::{simulate_sequential, simulate_st};
use mtpu_repro::mtpu::stream::StreamTransforms;
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::primitives::U256;
use mtpu_repro::workloads::{BlockConfig, Generator};

#[test]
fn full_pipeline_speedup_hierarchy() {
    // baseline >= ILP-only >= ILP+redundancy >= full hotspot config, on a
    // realistic block.
    let mut g = Generator::new(77);
    let warm = g.prepared_block(&BlockConfig::default());
    let mut table = ContractTable::new();
    warm.learn_hotspots(&mut table, &warm.state_before);
    let p = g.prepared_block(&BlockConfig {
        tx_count: 96,
        dependent_ratio: 0.2,
        erc20_ratio: None,
        sct_ratio: 1.0,
        chain_bias: 0.8,
        focus: None,
    });

    let base_cfg = MtpuConfig::baseline();
    let base = simulate_sequential(&p.jobs(&base_cfg, None), &base_cfg).makespan;

    let ilp_cfg = MtpuConfig {
        pu_count: 1,
        redundancy_opt: false,
        ..MtpuConfig::default()
    };
    let ilp = simulate_sequential(&p.jobs(&ilp_cfg, None), &ilp_cfg).makespan;

    let red_cfg = MtpuConfig {
        pu_count: 1,
        redundancy_opt: true,
        ..MtpuConfig::default()
    };
    let red = simulate_sequential(&p.jobs(&red_cfg, None), &red_cfg).makespan;

    let full_cfg = MtpuConfig {
        pu_count: 1,
        redundancy_opt: true,
        hotspot_opt: true,
        ..MtpuConfig::default()
    };
    let full = simulate_sequential(&p.jobs(&full_cfg, Some(&table)), &full_cfg).makespan;

    assert!(ilp < base, "ILP speeds up execution: {ilp} vs {base}");
    assert!(red < ilp, "redundancy reuse adds on top: {red} vs {ilp}");
    assert!(
        full < red,
        "hotspot optimization adds on top: {full} vs {red}"
    );

    // Four PUs with everything on reach the paper's speedup band.
    let quad_cfg = MtpuConfig {
        redundancy_opt: true,
        hotspot_opt: true,
        ..MtpuConfig::default()
    };
    let quad = simulate_st(&p.jobs(&quad_cfg, Some(&table)), &p.graph, &quad_cfg);
    let speedup = base as f64 / quad.makespan as f64;
    assert!(
        speedup > 3.5,
        "full co-design beats the scalar baseline by well over 3.5x: {speedup:.2}"
    );
}

#[test]
fn hotspot_analysis_is_sound_on_all_top8_paths() {
    let mut fx = Fixture::new();
    let header = BlockHeader::default();
    let to = Fixture::user_address(17).to_u256();
    let calls: Vec<(&str, &str, Vec<U256>)> = vec![
        ("Tether USD", "transfer", vec![to, U256::from(10u64)]),
        ("Dai", "transfer", vec![to, U256::from(10u64)]),
        ("LinkToken", "transfer", vec![to, U256::from(10u64)]),
        ("WETH9", "transfer", vec![to, U256::from(10u64)]),
        (
            "MainchainGatewayProxy",
            "deposit",
            vec![
                mtpu_repro::contracts::addresses::token(0).to_u256(),
                U256::from(10u64),
            ],
        ),
        ("Ballot", "vote", vec![U256::from(5u64)]),
    ];
    for (i, (contract, function, args)) in calls.into_iter().enumerate() {
        let mut st = fx.state.clone();
        let tx = fx.call_tx(1 + i as u64, contract, function, &args);
        let (r, trace) = trace_transaction(&mut st, &header, &tx).expect("valid");
        assert!(r.success, "{contract}::{function}");
        let code = st.code(fx.spec(contract).address).to_vec();
        let a = analyze_path(&trace, &code);

        // Soundness: the pre-executable prefix never contains an
        // instruction whose effect depends on mutable chain state —
        // storage, state queries, logs, calls, or termination. (The
        // dataflow analysis may legitimately include arithmetic, memory
        // and hashing over transaction attributes.)
        for s in &trace.steps {
            if s.frame != 0 {
                break;
            }
            if !a.preexec_pcs.contains(&s.pc) {
                break;
            }
            let op = s.opcode();
            assert!(
                !matches!(
                    op.category(),
                    mtpu_repro::evm::OpCategory::Storage
                        | mtpu_repro::evm::OpCategory::StateQuery
                        | mtpu_repro::evm::OpCategory::ContextSwitching
                        | mtpu_repro::evm::OpCategory::Control
                ),
                "{contract}: pre-executed {op} touches mutable chain state"
            );
            assert!(
                !matches!(
                    op,
                    Opcode::Log0 | Opcode::Log1 | Opcode::Log2 | Opcode::Log3 | Opcode::Log4
                ),
                "{contract}: pre-executed LOG"
            );
        }
        // Prefetch pcs must be SLOAD sites on the path.
        let sload_pcs: std::collections::HashSet<u32> = trace
            .steps
            .iter()
            .filter(|s| s.frame == 0 && s.opcode() == Opcode::Sload)
            .map(|s| s.pc)
            .collect();
        for pc in &a.prefetch_pcs {
            assert!(
                sload_pcs.contains(pc),
                "{contract}: prefetch pc {pc} is not an SLOAD"
            );
        }
        // Eliminated pushes must be PUSH sites on the path.
        let push_pcs: std::collections::HashSet<u32> = trace
            .steps
            .iter()
            .filter(|s| s.frame == 0 && s.opcode().is_push())
            .map(|s| s.pc)
            .collect();
        for pc in &a.eliminated_push_pcs {
            assert!(
                push_pcs.contains(pc),
                "{contract}: eliminated pc {pc} is not a PUSH"
            );
        }
        // Chunked loading never exceeds the code size.
        assert!(a.loaded_bytes <= a.full_bytes);
    }
}

#[test]
fn hotspot_transforms_preserve_timing_model_invariants() {
    // gas per line (G field) and retired-instruction accounting must stay
    // consistent under all stream transformations.
    let mut g = Generator::new(99);
    let warm = g.prepared_block(&BlockConfig::default());
    let mut table = ContractTable::new();
    warm.learn_hotspots(&mut table, &warm.state_before);

    let p = g.prepared_block(&BlockConfig {
        tx_count: 48,
        dependent_ratio: 0.1,
        erc20_ratio: None,
        sct_ratio: 1.0,
        chain_bias: 0.8,
        focus: None,
    });
    let cfg = MtpuConfig {
        pu_count: 1,
        redundancy_opt: true,
        hotspot_opt: true,
        ..MtpuConfig::default()
    };
    let mut pu = Pu::new(0, &cfg);
    let mut buffer = StateBuffer::default();
    for trace in &p.traces {
        let (tr, loaded) = table.transforms_for(trace);
        let job = TxJob::build_with_override(trace, &cfg, &tr, loaded);
        let t = pu.execute(&job, &mut buffer, &cfg);
        // Retired original instructions = full trace length.
        assert_eq!(t.instructions as usize, trace.steps.len());
        // Skipped + eliminated never exceed the trace.
        assert!(t.skipped_preexec + t.eliminated <= t.instructions);
        // Issue events cover the stream that remains.
        let remaining = t.instructions - t.skipped_preexec - t.eliminated;
        assert!(t.issue_events <= remaining.max(1));
        assert!(t.cycles >= t.ctx_load_cycles);
    }
}

#[test]
fn db_cache_determinism() {
    // Same job sequence => identical cycle counts (resume/replay safety).
    let mut g = Generator::new(13);
    let p = g.prepared_block(&BlockConfig::default());
    let cfg = MtpuConfig {
        pu_count: 1,
        redundancy_opt: true,
        ..MtpuConfig::default()
    };
    let run = || {
        let mut pu = Pu::new(0, &cfg);
        let mut buffer = StateBuffer::default();
        p.traces
            .iter()
            .map(|t| {
                let job = TxJob::build(t, &cfg, &StreamTransforms::none());
                pu.execute(&job, &mut buffer, &cfg).cycles
            })
            .collect::<Vec<_>>()
    };
    assert_eq!(run(), run());
}

#[test]
fn failing_transactions_still_schedule() {
    // Fault injection: a block containing reverting SCT calls must still
    // trace, build a DAG, schedule, and replay to the same state root.
    use mtpu_repro::evm::{execute_transaction, NoopTracer};
    use mtpu_repro::workloads::prepare_block;

    let mut fx = mtpu_repro::contracts::Fixture::new();
    let header = BlockHeader::default();
    let to = Fixture::user_address(9).to_u256();
    let txs = vec![
        // Valid transfer.
        fx.call_tx(1, "Tether USD", "transfer", &[to, U256::from(5u64)]),
        // Reverts: over-balance transfer.
        fx.call_tx(2, "Tether USD", "transfer", &[to, U256::from(u64::MAX)]),
        // Reverts: unknown selector.
        mtpu_repro::evm::Transaction::call(
            Fixture::user_address(3),
            mtpu_repro::contracts::addresses::tether(),
            vec![0xde, 0xad, 0xbe, 0xef],
            fx.next_nonce(3),
        ),
        // Valid again.
        fx.call_tx(4, "Dai", "transfer", &[to, U256::from(5u64)]),
    ];

    let block = mtpu_repro::evm::Block {
        header,
        transactions: txs,
    };
    let p = prepare_block(&fx.state, block);
    assert_eq!(p.receipts.len(), 4);
    assert!(p.receipts[0].success);
    assert!(!p.receipts[1].success, "over-balance must revert");
    assert!(!p.receipts[2].success, "unknown selector must revert");
    assert!(p.receipts[3].success);
    // Reverted txs still consumed gas and still produce traces/jobs.
    assert!(p.receipts[1].gas_used > 21_000);
    assert!(!p.traces[1].steps.is_empty());

    let cfg = MtpuConfig::default();
    let st = simulate_st(&p.jobs(&cfg, None), &p.graph, &cfg);
    assert!(p.graph.schedule_respects_dag(&st.start, &st.end));

    // Serializable replay reproduces the reference state root.
    let mut order: Vec<usize> = (0..4).collect();
    order.sort_by_key(|&i| (st.end[i], i));
    let mut state = p.state_before.clone();
    for &i in &order {
        execute_transaction(
            &mut state,
            &p.block.header,
            &p.block.transactions[i],
            &mut NoopTracer,
        )
        .expect("validates even when execution reverts");
    }
    assert_eq!(state.state_root(), p.state_after.state_root());
}
