//! Randomized tests spanning crates: differential interpreter checking
//! (random expression programs vs direct U256 evaluation), fill-unit
//! invariants, and scheduler correctness on random DAGs. Driven by the
//! in-repo deterministic [`SplitMix64`] generator so the suite runs
//! offline with no external crates.

use mtpu_repro::asm::Assembler;
use mtpu_repro::evm::interpreter::{CallParams, Evm};
use mtpu_repro::evm::opcode::Opcode;
use mtpu_repro::evm::state::State;
use mtpu_repro::evm::trace::{CallKind, NoopTracer, TraceRecorder, Tracer};
use mtpu_repro::evm::tx::BlockHeader;
use mtpu_repro::mtpu::dbcache::LineBuilder;
use mtpu_repro::mtpu::sched::{simulate_st, simulate_sync, DepGraph};
use mtpu_repro::mtpu::stream::{build_stream, MicroOp, StreamTransforms};
use mtpu_repro::mtpu::MtpuConfig;
use mtpu_repro::primitives::{Address, SplitMix64, B256, U256};

/// A random binary-op expression tree with U256 leaves.
#[derive(Debug, Clone)]
enum Expr {
    Lit(U256),
    Bin(Opcode, Box<Expr>, Box<Expr>),
}

fn arb_u256(rng: &mut SplitMix64) -> U256 {
    match rng.random_range(0..5) {
        0 => U256::from(rng.next_u64()),
        1 => U256::from(rng.next_u64() as u128 | ((rng.next_u64() as u128) << 64)),
        2 => U256::ZERO,
        3 => U256::MAX,
        _ => U256::from_limbs([
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
            rng.next_u64(),
        ]),
    }
}

const BINOPS: &[Opcode] = &[
    Opcode::Add,
    Opcode::Sub,
    Opcode::Mul,
    Opcode::Div,
    Opcode::Mod,
    Opcode::And,
    Opcode::Or,
    Opcode::Xor,
    Opcode::Lt,
    Opcode::Gt,
    Opcode::Eq,
    Opcode::Shl,
    Opcode::Shr,
    Opcode::Byte,
    Opcode::Sdiv,
    Opcode::Smod,
];

fn arb_binop(rng: &mut SplitMix64) -> Opcode {
    BINOPS[rng.random_index(BINOPS.len())]
}

/// A random expression tree of bounded depth.
fn arb_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
    if depth == 0 || rng.random_bool(0.3) {
        Expr::Lit(arb_u256(rng))
    } else {
        Expr::Bin(
            arb_binop(rng),
            Box::new(arb_expr(rng, depth - 1)),
            Box::new(arb_expr(rng, depth - 1)),
        )
    }
}

/// Reference semantics of the expression.
fn eval_expr(e: &Expr) -> U256 {
    match e {
        Expr::Lit(v) => *v,
        Expr::Bin(op, a, b) => {
            // EVM binary op on stack [b_val, a_val] (a on top) computes
            // op(a, b).
            let a = eval_expr(a);
            let b = eval_expr(b);
            match op {
                Opcode::Add => a.wrapping_add(b),
                Opcode::Sub => a.wrapping_sub(b),
                Opcode::Mul => a.wrapping_mul(b),
                Opcode::Div => a.evm_div(b),
                Opcode::Mod => a.evm_rem(b),
                Opcode::And => a & b,
                Opcode::Or => a | b,
                Opcode::Xor => a ^ b,
                Opcode::Lt => U256::from(a < b),
                Opcode::Gt => U256::from(a > b),
                Opcode::Eq => U256::from(a == b),
                Opcode::Shl => b.evm_shl(a),
                Opcode::Shr => b.evm_shr(a),
                Opcode::Byte => b.byte_be(a),
                Opcode::Sdiv => a.evm_sdiv(b),
                Opcode::Smod => a.evm_smod(b),
                _ => unreachable!("not a generated binop"),
            }
        }
    }
}

/// Compiles the expression to stack code leaving the value on top.
fn compile_expr(e: &Expr, asm: &mut Assembler) {
    match e {
        Expr::Lit(v) => {
            asm.push(*v);
        }
        Expr::Bin(op, a, b) => {
            // Push b first, then a (a ends on top = first operand).
            compile_expr(b, asm);
            compile_expr(a, asm);
            asm.op(*op);
        }
    }
}

fn run_code(code: Vec<u8>) -> (bool, Vec<u8>, mtpu_repro::evm::TxTrace) {
    let mut state = State::new();
    let contract = Address::from_low_u64(0xc0de);
    state.deploy_code(contract, code);
    let header = BlockHeader::default();
    let mut recorder = TraceRecorder::new();
    let mut evm = Evm::new(
        &mut state,
        &header,
        Address::from_low_u64(1),
        U256::ONE,
        &mut recorder,
    );
    let res = evm.call(CallParams {
        kind: CallKind::Call,
        caller: Address::from_low_u64(1),
        code_address: contract,
        storage_address: contract,
        value: U256::ZERO,
        transfers_value: false,
        input: vec![],
        gas: 50_000_000,
        is_static: false,
        depth: 0,
    });
    (res.success(), res.output, recorder.into_trace())
}

/// The interpreter agrees with direct U256 evaluation on random
/// expression programs.
#[test]
fn interpreter_matches_reference() {
    let mut rng = SplitMix64::new(0xE44);
    for _ in 0..64 {
        let expr = arb_expr(&mut rng, 4);
        let mut asm = Assembler::new();
        compile_expr(&expr, &mut asm);
        asm.push(0u64)
            .op(Opcode::Mstore)
            .push(32u64)
            .push(0u64)
            .op(Opcode::Return);
        let code = asm.assemble().expect("assembles");
        let (ok, output, _) = run_code(code);
        assert!(ok);
        assert_eq!(U256::from_be_slice(&output), eval_expr(&expr));
    }
}

/// Folding never changes the retired-instruction count and always
/// shortens (or preserves) the stream.
#[test]
fn folding_preserves_instruction_accounting() {
    let mut rng = SplitMix64::new(0xF01D);
    for _ in 0..64 {
        let expr = arb_expr(&mut rng, 4);
        let mut asm = Assembler::new();
        compile_expr(&expr, &mut asm);
        asm.op(Opcode::Stop);
        let code = asm.assemble().expect("assembles");
        let (_, _, trace) = run_code(code);
        let (plain, _) = build_stream(&trace, false, &StreamTransforms::none());
        let (folded, stats) = build_stream(&trace, true, &StreamTransforms::none());
        let retired: u32 = folded.iter().map(|u| u.insn_count).sum();
        assert_eq!(retired as usize, trace.steps.len());
        assert_eq!(plain.len(), trace.steps.len());
        assert!(folded.len() <= plain.len());
        assert_eq!(plain.len() - folded.len(), stats.folded as usize);
    }
}

/// Fill-unit invariants on arbitrary op sequences: lines never exceed
/// the slot budget, never contain two non-stack ops of one category,
/// and close at control transfers.
#[test]
fn fill_unit_invariants() {
    let mut rng = SplitMix64::new(0xF111);
    for _ in 0..64 {
        let ops: Vec<Opcode> = (0..rng.random_range(1..40))
            .map(|_| arb_binop(&mut rng))
            .collect();
        let mut builder = LineBuilder::new(B256::ZERO, true);
        let mut lines: Vec<Vec<Opcode>> = Vec::new();
        let mut current: Vec<Opcode> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let uop = MicroOp {
                step: i as u32,
                frame: 0,
                pc: (i * 2) as u32,
                op: *op,
                const_operand: false,
                insn_count: 1,
                prefetched: false,
            };
            if builder.try_add(&uop).is_err() {
                if !current.is_empty() {
                    lines.push(std::mem::take(&mut current));
                }
                builder = LineBuilder::new(B256::ZERO, true);
                builder.try_add(&uop).expect("fresh line accepts one op");
            }
            current.push(*op);
        }
        if !current.is_empty() {
            lines.push(current);
        }
        for line in &lines {
            assert!(line.len() <= mtpu_repro::mtpu::dbcache::MAX_LINE_OPS);
            let mut unit_seen = [false; 11];
            for op in line {
                let cat = op.category();
                if cat != mtpu_repro::evm::OpCategory::Stack {
                    let idx = cat.index();
                    assert!(!unit_seen[idx], "unit conflict within a line: {line:?}");
                    unit_seen[idx] = true;
                }
            }
            // Control transfers only at line end.
            for op in &line[..line.len() - 1] {
                assert!(!op.is_block_end(), "block end inside a line: {line:?}");
            }
        }
    }
}

/// On random DAGs with random durations, both schedulers complete
/// every transaction exactly once and respect every edge.
#[test]
fn schedules_respect_random_dags() {
    let mut rng = SplitMix64::new(0xDA6);
    for _ in 0..64 {
        let n = rng.random_range(2..24) as usize;
        let mut graph = DepGraph::new(n);
        for _ in 0..rng.random_range(0..40) {
            let a = rng.random_index(n);
            let b = rng.random_index(n);
            if a < b {
                graph.add_edge(a, b);
            }
        }
        let seed = rng.next_u64();
        // Synthetic jobs with varying instruction counts.
        let cfg = MtpuConfig {
            pu_count: 3,
            redundancy_opt: false,
            enable_db_cache: false,
            ..MtpuConfig::default()
        };
        let jobs: Vec<_> = (0..n)
            .map(|i| {
                let len = 20 + ((seed.wrapping_mul(i as u64 + 1)) % 200) as usize;
                synthetic_job(i as u64 % 4, len, &cfg)
            })
            .collect();
        for result in [
            simulate_st(&jobs, &graph, &cfg),
            simulate_sync(&jobs, &graph, &cfg),
        ] {
            assert!(graph.schedule_respects_dag(&result.start, &result.end));
            for i in 0..n {
                assert!(result.end[i] > result.start[i]);
                assert!(result.pu_of[i] < cfg.pu_count);
            }
            assert_eq!(result.makespan, *result.end.iter().max().unwrap());
            assert!(result.utilization() <= 1.0 + 1e-9);
        }
    }
}

/// A synthetic job on contract `c` with `len` alternating instructions.
fn synthetic_job(c: u64, len: usize, cfg: &MtpuConfig) -> mtpu_repro::mtpu::TxJob {
    use mtpu_repro::evm::trace::{FrameInfo, TraceStep, TxTrace};
    let trace = TxTrace {
        frames: vec![FrameInfo {
            depth: 0,
            kind: CallKind::Call,
            code_address: Address::from_low_u64(c),
            storage_address: Address::from_low_u64(c),
            code_hash: B256::keccak(&c.to_be_bytes()),
            code_len: 500,
            input_len: 36,
            selector: None,
        }],
        steps: (0..len)
            .map(|i| TraceStep {
                frame: 0,
                pc: (i * 2) as u32,
                op: if i % 2 == 0 {
                    Opcode::Push1
                } else {
                    Opcode::Pop
                } as u8,
            })
            .collect(),
        storage: Vec::new(),
        gas_used: 21_000,
        success: true,
    };
    mtpu_repro::mtpu::TxJob::build(&trace, cfg, &StreamTransforms::none())
}

/// Regression: tracing and non-tracing execution agree.
#[test]
fn tracing_does_not_change_semantics() {
    let mut asm = Assembler::new();
    asm.push(0x1234u64)
        .push(0x10u64)
        .op(Opcode::Add)
        .push(0u64)
        .op(Opcode::Mstore)
        .push(32u64)
        .push(0u64)
        .op(Opcode::Return);
    let code = asm.assemble().unwrap();

    fn run<T: Tracer>(code: &[u8], tracer: &mut T) -> mtpu_repro::evm::FrameResult {
        let mut state = State::new();
        let contract = Address::from_low_u64(2);
        state.deploy_code(contract, code.to_vec());
        let header = BlockHeader::default();
        let mut evm = Evm::new(
            &mut state,
            &header,
            Address::from_low_u64(1),
            U256::ONE,
            tracer,
        );
        evm.call(CallParams {
            kind: CallKind::Call,
            caller: Address::from_low_u64(1),
            code_address: contract,
            storage_address: contract,
            value: U256::ZERO,
            transfers_value: false,
            input: vec![],
            gas: 100_000,
            is_static: false,
            depth: 0,
        })
    }
    let mut noop = NoopTracer;
    let a = run(&code, &mut noop);
    let mut rec = TraceRecorder::new();
    let b = run(&code, &mut rec);
    assert_eq!(a.output, b.output);
    assert_eq!(a.gas_left, b.gas_left);
    assert_eq!(rec.into_trace().steps.len(), 8);
}
