//! The MVCC read layer's consistency contract, end to end: every read a
//! [`ReadServer`] serves at height *H* — point reads, receipts, full
//! read-only `call` simulation — must be bit-identical to a sequential
//! [`State`] replayed to *H*, no matter how far the write pipeline has
//! advanced past it, which publication mode fed the server, or how many
//! reader threads are hammering it concurrently.

use mtpu_repro::contracts::{addresses, call_data, Fixture};
use mtpu_repro::evm::execute_block as sequential;
use mtpu_repro::evm::state::{State, StateOps};
use mtpu_repro::evm::tx::{Block, BlockHeader, Receipt, Transaction};
use mtpu_repro::evm::{call_readonly, BlockDelta, ReadCall, StateOverlay, StateRead};
use mtpu_repro::mempool::{
    BlockPacker, BlockSink, CommittedBlock, DriverConfig, Mempool, NodeDriver, PackerConfig,
    PoolConfig, TxSource,
};
use mtpu_repro::primitives::{Address, SplitMix64, B256, U256};
use mtpu_repro::readserve::{ReadServeConfig, ReadServer};
use mtpu_repro::workloads::{ZipfConfig, ZipfGen};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

fn a(n: u64) -> Address {
    Address::from_low_u64(n)
}

fn u(v: u64) -> U256 {
    U256::from(v)
}

fn header(height: u64) -> BlockHeader {
    BlockHeader {
        height,
        ..Default::default()
    }
}

fn empty_block(height: u64) -> Arc<Block> {
    Arc::new(Block {
        header: header(height),
        transactions: Vec::new(),
    })
}

/// A Zipf stream truncated to `left` transactions.
struct Bounded {
    gen: ZipfGen,
    left: usize,
}

impl TxSource for Bounded {
    fn next_tx(&mut self) -> Option<Transaction> {
        if self.left == 0 {
            return None;
        }
        self.left -= 1;
        Some(self.gen.next_tx())
    }
}

/// Property: across random delta chains — credits, storage churn, code
/// swaps, selfdestruct and recreate — a snapshot read at height *H* is
/// bit-identical to the sequential state replayed to *H*, verified by
/// reader threads racing the publication of later blocks.
#[test]
fn snapshot_reads_match_sequential_replay_while_blocks_keep_committing() {
    const BLOCKS: u64 = 64;
    // Addresses 1..=8 are users, 100..=102 contracts; keys 0..6.
    let users: Vec<Address> = (1..=8).map(a).collect();
    let contracts: Vec<Address> = (100..=102).map(a).collect();
    let keys: Vec<U256> = (0..6).map(u).collect();

    let mut genesis = State::new();
    for &user in &users {
        genesis.credit(user, u(1_000_000));
    }
    for &c in &contracts {
        genesis.set_code(c, vec![0x60, 0x00]);
        genesis.set_storage(c, u(0), u(1));
    }
    genesis.finalize_tx();

    // Precompute the random chain and its sequential oracle.
    let mut rng = SplitMix64::seed_from_u64(0x5EAD);
    let mut states: Vec<Arc<State>> = vec![Arc::new(genesis.clone())];
    let mut roots: Vec<B256> = vec![genesis.merkle_root()];
    let mut deltas: Vec<Arc<BlockDelta>> = Vec::new();
    for _ in 1..=BLOCKS {
        let prev = states.last().unwrap().clone();
        let view: &dyn StateRead = prev.as_ref();
        let mut ov = StateOverlay::new(&view);
        for _ in 0..rng.random_range(1..6) {
            match rng.random_range(0..10) {
                0..=3 => {
                    let user = users[rng.random_range(0..users.len() as u64) as usize];
                    ov.credit(user, u(rng.random_range(1..1000)));
                }
                4..=6 => {
                    let c = contracts[rng.random_range(0..contracts.len() as u64) as usize];
                    let k = keys[rng.random_range(0..keys.len() as u64) as usize];
                    ov.set_storage(c, k, u(rng.random_range(0..50)));
                }
                7 => {
                    let c = contracts[rng.random_range(0..contracts.len() as u64) as usize];
                    ov.set_code(c, vec![0x60, rng.random_range(0..256) as u8]);
                }
                8 => {
                    let c = contracts[rng.random_range(0..contracts.len() as u64) as usize];
                    ov.mark_destructed(c);
                }
                _ => {
                    // Recreate whatever the last destruct killed (or just
                    // touch a contract): code + one slot.
                    let c = contracts[rng.random_range(0..contracts.len() as u64) as usize];
                    ov.set_code(c, vec![0xfe]);
                    ov.set_storage(c, keys[0], u(rng.random_range(1..9)));
                }
            }
        }
        ov.finalize_tx();
        let (tx, _) = ov.into_parts();
        let mut delta = BlockDelta::new();
        delta.merge(&tx, &view);
        let mut next = (*prev).clone();
        delta.apply_to(&mut next);
        roots.push(next.merkle_root());
        states.push(Arc::new(next));
        deltas.push(Arc::new(delta));
    }

    let server = ReadServer::new(
        genesis,
        ReadServeConfig {
            retention: 24,
            max_delta_chain: 4, // force folds mid-run
            feed_capacity: 8,
        },
    );

    let done = AtomicBool::new(false);
    let verified = AtomicU64::new(0);
    std::thread::scope(|s| {
        // Writer: publish the whole chain, roots trailing by one block the
        // way the pipelined committer does.
        s.spawn(|| {
            for h in 1..=BLOCKS {
                server.on_block(CommittedBlock {
                    height: h,
                    block: empty_block(h),
                    receipts: Arc::new(Vec::new()),
                    state: None,
                    delta: deltas[h as usize - 1].clone(),
                });
                if h > 1 {
                    server.on_root(h - 1, roots[h as usize - 1]);
                }
            }
            server.on_root(BLOCKS, roots[BLOCKS as usize]);
            done.store(true, Ordering::Release);
        });

        // Readers: race the writer, verifying whatever heights are
        // retained at the moment they look.
        for reader in 0..3u64 {
            let server = &server;
            let states = &states;
            let users = &users;
            let contracts = &contracts;
            let keys = &keys;
            let done = &done;
            let verified = &verified;
            s.spawn(move || {
                let mut rng = SplitMix64::seed_from_u64(0xBEEF + reader);
                loop {
                    let finished = done.load(Ordering::Acquire);
                    let Some((lo, hi)) = server.retained() else {
                        continue;
                    };
                    let h = lo + rng.next_u64() % (hi - lo + 1);
                    // Pin the snapshot first: the height must stay
                    // readable even if the window slides past it.
                    let Some(snap) = server.snapshot(Some(h)) else {
                        continue;
                    };
                    let oracle = &states[snap.height() as usize];
                    let user = users[rng.random_range(0..users.len() as u64) as usize];
                    let c = contracts[rng.random_range(0..contracts.len() as u64) as usize];
                    let k = keys[rng.random_range(0..keys.len() as u64) as usize];
                    assert_eq!(snap.read_balance(user), oracle.balance(user), "h={h}");
                    assert_eq!(snap.read_storage(c, k), oracle.storage(c, k), "h={h}");
                    assert_eq!(snap.read_code(c), oracle.load_code(c), "h={h}");
                    assert_eq!(snap.read_exists(c), oracle.exists(c), "h={h}");
                    verified.fetch_add(1, Ordering::Relaxed);
                    if finished {
                        break;
                    }
                }
            });
        }
    });
    assert!(
        verified.load(Ordering::Relaxed) >= 3,
        "readers never overlapped the writer"
    );

    // After the dust settles: every retained height, exhaustively, plus
    // its resolved root.
    let (lo, hi) = server.retained().expect("window non-empty");
    for h in lo..=hi {
        let snap = server.snapshot(Some(h)).expect("retained");
        let oracle = &states[h as usize];
        for &user in &users {
            assert_eq!(snap.read_balance(user), oracle.balance(user));
            assert_eq!(snap.read_nonce(user), oracle.nonce(user));
        }
        for &c in &contracts {
            assert_eq!(snap.read_code(c), oracle.load_code(c));
            assert_eq!(snap.read_code_hash(c), oracle.code_hash(c));
            for &k in &keys {
                assert_eq!(snap.read_storage(c, k), oracle.storage(c, k));
            }
        }
        assert_eq!(snap.merkle_root(), Some(roots[h as usize]));
    }
    assert!(server.pruned() > 0, "the window never slid");
}

/// Receipts live exactly as long as their snapshot: lookup by hash works
/// for retained heights and returns `None` once the window slides past.
#[test]
fn receipts_prune_with_their_snapshots() {
    let mut genesis = State::new();
    genesis.credit(a(1), u(1_000_000));
    genesis.finalize_tx();
    let server = ReadServer::new(
        genesis.clone(),
        ReadServeConfig {
            retention: 4,
            ..ReadServeConfig::default()
        },
    );

    let mut hashes = Vec::new();
    for h in 1..=12u64 {
        let view: &dyn StateRead = &genesis;
        let mut ov = StateOverlay::new(&view);
        ov.credit(a(2), u(h));
        ov.finalize_tx();
        let (tx, _) = ov.into_parts();
        let mut delta = BlockDelta::new();
        delta.merge(&tx, &view);

        let transfer = Transaction::transfer(a(1), a(2), u(h), h - 1);
        hashes.push(transfer.hash());
        server.on_block(CommittedBlock {
            height: h,
            block: Arc::new(Block {
                header: header(h),
                transactions: vec![transfer],
            }),
            receipts: Arc::new(vec![Receipt {
                success: true,
                gas_used: 21_000 + h,
                logs: Vec::new(),
                output: Vec::new(),
                created: None,
            }]),
            state: None,
            delta: Arc::new(delta),
        });
        server.on_root(h, B256::keccak(&h.to_be_bytes()));
    }

    let (lo, hi) = server.retained().expect("window non-empty");
    assert_eq!(hi, 12);
    assert!(lo > 1, "retention 4 must have pruned the early blocks");
    // Pruned block: receipt gone.
    assert_eq!(server.receipt_by_hash(hashes[0]), None);
    // Retained block: height, index and payload all line up.
    let (h, idx, receipt) = server
        .receipt_by_hash(hashes[11])
        .expect("receipt at the head");
    assert_eq!((h, idx), (12, 0));
    assert_eq!(receipt.gas_used, 21_000 + 12);
}

fn make_driver(blocks: usize) -> NodeDriver {
    NodeDriver::new(
        Mempool::new(PoolConfig::default()),
        BlockPacker::new(PackerConfig::default()),
        DriverConfig {
            blocks,
            threads: 4,
            ingest_batch: 64,
            prefill: 256,
            background_ingest: false,
            ..DriverConfig::default()
        },
    )
}

fn make_source(seed: u64) -> Bounded {
    Bounded {
        gen: ZipfGen::new(
            seed,
            ZipfConfig {
                senders: 64,
                hot_ratio: 0.3,
                ..ZipfConfig::default()
            },
        ),
        left: 600,
    }
}

/// End to end against the real pipeline: attach a [`ReadServer`] to a
/// deterministic `NodeDriver::run` session, then check everything the
/// server can say — roots, receipts, point reads, `eth_call` simulation,
/// subscription events — against a sequential replay of the very blocks
/// it served.
#[test]
fn driver_run_serves_reads_identical_to_sequential_replay() {
    const BLOCKS: usize = 4;
    let source = make_source(0xFEED);
    let genesis = source.gen.genesis_state().clone();
    let server = ReadServer::new(genesis.clone(), ReadServeConfig::default());
    let sub = server.subscribe();

    let report = make_driver(BLOCKS)
        .with_sink(server.clone())
        .run(genesis.clone(), source, header);
    assert_eq!(report.blocks.len(), BLOCKS);

    // The subscription saw every block, in order, with the same roots the
    // driver reported.
    let events = sub.drain();
    assert_eq!(events.len(), BLOCKS);
    assert_eq!(sub.dropped(), 0);
    for (ev, summary) in events.iter().zip(&report.blocks) {
        assert_eq!(ev.height, summary.height);
        assert_eq!(ev.merkle_root, summary.merkle_root);
    }

    // Sequential replay of the blocks the server retained.
    let tether = addresses::tether();
    let mut state = genesis;
    for summary in &report.blocks {
        let snap = server.snapshot(Some(summary.height)).expect("retained");
        let receipts = sequential(&mut state, snap.block());
        assert_eq!(&receipts, snap.receipts().as_ref(), "h={}", summary.height);
        assert_eq!(state.merkle_root(), summary.merkle_root);
        assert_eq!(snap.merkle_root(), Some(summary.merkle_root));

        for user in 0..32 {
            let addr = Fixture::user_address(user);
            assert_eq!(
                server.get_balance(Some(summary.height), addr),
                Some((summary.height, state.balance(addr)))
            );
            assert_eq!(
                server.get_nonce(Some(summary.height), addr),
                Some((summary.height, state.nonce(addr)))
            );
        }

        // eth_call simulation: ERC20 balanceOf against the snapshot must
        // equal the same call simulated on the replayed state.
        let call = ReadCall::view(
            Fixture::user_address(0),
            tether,
            call_data("balanceOf(address)", &[Fixture::user_address(1).to_u256()]),
        );
        let (at, got) = server.call(Some(summary.height), &call).expect("retained");
        let want = call_readonly(&state, snap.header(), &call);
        assert_eq!(at, summary.height);
        assert!(got.success && want.success);
        assert_eq!(got.output, want.output);
        assert_eq!(got.gas_used, want.gas_used);
    }

    // Receipt lookup by transaction hash, spot-checked on the last block.
    let last = server.latest().expect("retained");
    let tx = last.block().transactions.first().expect("non-empty block");
    let (h, idx, receipt) = server.receipt_by_hash(tx.hash()).expect("indexed");
    assert_eq!(h, last.height());
    assert_eq!(&receipt, &last.receipts()[idx]);
}

/// Publication-mode parity: the same deterministic session through
/// `run` (full-state snapshots) and `run_flat` (delta chains + folds)
/// must serve identical reads at every height.
#[test]
fn run_flat_sink_serves_the_same_reads_as_run() {
    use mtpu_repro::accountsdb::{AccountsDb, FlushService};
    const BLOCKS: usize = 4;

    let genesis = make_source(0xF1A7).gen.genesis_state().clone();

    let full = ReadServer::new(genesis.clone(), ReadServeConfig::default());
    let a_report = make_driver(BLOCKS).with_sink(full.clone()).run(
        genesis.clone(),
        make_source(0xF1A7),
        header,
    );

    let dir = std::env::temp_dir().join(format!("mtpu-readserve-flat-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let db = Arc::new(AccountsDb::open(&dir).expect("open accounts db"));
    db.bootstrap_from_state(&genesis, 0);
    let flush = FlushService::start(db.clone());
    let flat = ReadServer::new(
        genesis.clone(),
        ReadServeConfig {
            max_delta_chain: 2, // force folds inside a 4-block session
            ..ReadServeConfig::default()
        },
    );
    let b_report = make_driver(BLOCKS).with_sink(flat.clone()).run_flat(
        &genesis,
        &db,
        &flush,
        make_source(0xF1A7),
        header,
    );
    drop(flush);
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);

    assert_eq!(a_report.final_root, b_report.final_root);
    for h in 1..=BLOCKS as u64 {
        let sa = full.snapshot(Some(h)).expect("full retained");
        let sb = flat.snapshot(Some(h)).expect("flat retained");
        assert_eq!(sa.merkle_root(), sb.merkle_root(), "root diverged at {h}");
        assert_eq!(sa.receipts(), sb.receipts(), "receipts diverged at {h}");
        for user in 0..64 {
            let addr = Fixture::user_address(user);
            assert_eq!(sa.read_balance(addr), sb.read_balance(addr), "h={h}");
            assert_eq!(sa.read_nonce(addr), sb.read_nonce(addr), "h={h}");
        }
        let tether = addresses::tether();
        assert_eq!(
            sa.read_storage(tether, u(0)),
            sb.read_storage(tether, u(0)),
            "h={h}"
        );
    }
}
