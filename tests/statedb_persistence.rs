//! File-backed state-commitment persistence: a chain of blocks committed
//! through `FileStore` must survive a restart — reopening the store
//! resumes at the same root, and the chain can keep growing from there.
//! Work committed but never synced is dropped on reopen (crash
//! semantics), leaving the store at the last durable root.

use mtpu_repro::evm::state::State;
use mtpu_repro::evm::{commit_block_delta, commit_full};
use mtpu_repro::parexec::ParExecutor;
use mtpu_repro::primitives::B256;
use mtpu_repro::statedb::{FileStore, StateCommitter};
use mtpu_repro::workloads::{BlockConfig, Generator};
use std::path::PathBuf;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("mtpu-statedb-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn block_config(tx_count: usize) -> BlockConfig {
    BlockConfig {
        tx_count,
        dependent_ratio: 0.3,
        erc20_ratio: None,
        sct_ratio: 0.9,
        chain_bias: 0.6,
        focus: None,
    }
}

/// Executes one generated block on top of `state`, commits its delta
/// incrementally, and returns the persisted root (asserted equal to the
/// from-scratch commitment of the post-state).
fn advance(
    generator: &mut Generator,
    executor: &ParExecutor,
    committer: &mut StateCommitter<FileStore>,
    state: &mut State,
    tx_count: usize,
) -> B256 {
    let block = generator.block(&block_config(tx_count));
    let result = executor.execute_block(state, &block);
    let root = commit_block_delta(committer, state, &result.delta);
    committer.persist().expect("persist block");
    *state = result.state;
    assert_eq!(root, state.merkle_root(), "incremental commit diverged");
    root
}

#[test]
fn chain_survives_restart_and_continues() {
    let dir = scratch_dir("restart");
    let executor = ParExecutor::new(4);
    let mut generator = Generator::new(0xF11E);
    let mut state = generator.fx.state.clone();

    // Genesis + three blocks, all persisted.
    let mut committer = StateCommitter::new(FileStore::open(&dir).expect("open store"));
    commit_full(&mut committer, &state);
    let genesis_root = committer.persist().expect("persist genesis");
    assert_eq!(genesis_root, state.merkle_root());

    let mut head = genesis_root;
    for _ in 0..3 {
        head = advance(&mut generator, &executor, &mut committer, &mut state, 48);
        generator.fx.state = state.clone();
    }
    assert_ne!(head, genesis_root);
    drop(committer);

    // Restart: the reopened store resumes at the chain head...
    let mut reopened = StateCommitter::new(FileStore::open(&dir).expect("reopen store"));
    assert_eq!(
        reopened.commit(),
        head,
        "reopened store lost the chain head"
    );
    // ...and every account/slot read back through the trie matches the
    // live state.
    for (addr, account) in state.iter_live_accounts() {
        let record = reopened
            .account(&addr)
            .expect("persisted account missing after restart");
        assert_eq!(record.nonce, account.nonce);
        assert_eq!(record.balance, account.balance);
        for (&slot, &value) in &account.storage {
            assert_eq!(reopened.storage_value(&addr, slot), value);
        }
    }

    // The chain keeps growing from the restored root.
    let next = advance(&mut generator, &executor, &mut reopened, &mut state, 48);
    assert_ne!(next, head);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The deterministic-merge guarantee, at the byte level: committing the
/// same chain with 1 and 4 worker threads must produce **byte-identical**
/// `nodes.log` files — the parallel path batches per worker but absorbs
/// the batches in canonical order, so the store append order (and the
/// manifest-vouched length) never depends on the thread count. See
/// DESIGN.md §10.
#[test]
fn parallel_commit_store_bytes_match_serial() {
    let executor = ParExecutor::new(4);
    let mut generator = Generator::new(0xBA7C);
    let genesis = generator.fx.state.clone();

    // Execute the chain once; replay the same (base, delta) steps into
    // every store so the inputs are identical.
    let mut steps = Vec::new();
    let mut state = genesis.clone();
    for _ in 0..3 {
        let block = generator.block(&block_config(48));
        let result = executor.execute_block(&state, &block);
        steps.push((state.clone(), result.delta.clone()));
        state = result.state;
        generator.fx.state = state.clone();
    }

    let run = |tag: &str, threads: usize| -> (PathBuf, B256) {
        let dir = scratch_dir(tag);
        let mut committer =
            StateCommitter::new(FileStore::open(&dir).expect("open store")).with_threads(threads);
        commit_full(&mut committer, &genesis);
        committer.persist().expect("persist genesis");
        let mut head = B256::ZERO;
        for (base, delta) in &steps {
            head = commit_block_delta(&mut committer, base, delta);
            committer.persist().expect("persist block");
        }
        (dir, head)
    };

    let (dir1, head1) = run("bytes-serial", 1);
    let (dir4, head4) = run("bytes-par", 4);
    assert_eq!(head1, head4, "parallel commit diverged from serial");
    assert_eq!(head1, state.merkle_root());
    let log1 = std::fs::read(dir1.join("nodes.log")).expect("read serial log");
    let log4 = std::fs::read(dir4.join("nodes.log")).expect("read parallel log");
    assert!(!log1.is_empty());
    assert_eq!(log1, log4, "parallel commit changed the store append order");
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir4);
}

/// Crash-semantics body, shared by the serial and multi-worker variants:
/// a commit whose manifest never synced must vanish on reopen, and the
/// lost block must replay to the same head.
fn crash_drops_unsynced_tail(tag: &str, threads: usize) {
    let dir = scratch_dir(tag);
    let executor = ParExecutor::new(2);
    let mut generator = Generator::new(0xC4A5);
    let mut state = generator.fx.state.clone();

    let mut committer =
        StateCommitter::new(FileStore::open(&dir).expect("open store")).with_threads(threads);
    commit_full(&mut committer, &state);
    let durable = committer.persist().expect("persist genesis");

    // Commit a block but "crash" before syncing the manifest.
    let block = generator.block(&block_config(32));
    let result = executor.execute_block(&state, &block);
    let unsynced = commit_block_delta(&mut committer, &state, &result.delta);
    assert_ne!(unsynced, durable);
    drop(committer);

    // Reopen: the store is back at the last durable root, and the lost
    // block can be re-committed to reach the same head.
    let mut reopened =
        StateCommitter::new(FileStore::open(&dir).expect("reopen store")).with_threads(threads);
    assert_eq!(
        reopened.commit(),
        durable,
        "unsynced tail leaked into manifest"
    );
    let replayed = commit_block_delta(&mut reopened, &state, &result.delta);
    assert_eq!(replayed, unsynced, "replayed commit diverged");
    state = result.state;
    assert_eq!(replayed, state.merkle_root());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unsynced_commits_are_dropped_on_reopen() {
    crash_drops_unsynced_tail("crash", 1);
}

/// Same crash semantics when the lost commit was hashed by a 4-worker
/// pool: batched appends past the manifest are equally invisible.
#[test]
fn unsynced_parallel_commits_are_dropped_on_reopen() {
    crash_drops_unsynced_tail("crash-par", 4);
}
